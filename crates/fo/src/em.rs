//! Expectation-Maximisation post-processing ("PostProcess" in Algorithm 1).
//!
//! Given a known randomisation channel `M` (`P(output | input)`) and the
//! histogram of observed outputs, EM finds a maximum-likelihood input
//! distribution. Li et al. \[6\] add a smoothing step between iterations
//! ("EMS") that regularises the estimate towards ordinal smoothness; the
//! paper's PostProcess uses the same machinery on the 2-D grid (the 2-D
//! smoother lives in `dam-core`).
//!
//! # Operator-based EM
//!
//! [`expectation_maximization`] never touches matrix entries directly: it
//! is generic over [`ChannelOp`], which exposes the only two primitives EM
//! needs —
//!
//! * `apply` — the E-step product `M·f` (predicted output distribution);
//! * `accumulate_adjoint` — the M-step update `f ⊙ Mᵀw` for a weight
//!   vector `w` derived from the observed counts.
//!
//! The dense [`Channel`] is the reference implementation (O(n_out·n_in)
//! per iteration). Structured channels — notably the translation-invariant
//! `ConvChannel` and the spectral `FftChannel` in `dam-core` — implement
//! the same trait and drop straight into every EM call site, so the
//! estimator pipeline never materialises an `n_out × n_in` matrix.
//!
//! Both primitives take an [`EmWorkspace`]: a bag of reusable scratch
//! planes a structured operator can carve its per-call buffers out of
//! (padded grids, FFT spectra, …). The workspace is created once per EM
//! run, so steady-state iterations allocate nothing; operators that need
//! no scratch (the dense channel, the stencil) simply ignore it.

/// Reusable scratch planes for [`ChannelOp`] primitives.
///
/// An operator asks for its scratch through [`EmWorkspace::planes`]; the
/// buffers are allocated on first use and reused verbatim on every later
/// call with the same sizes, which is what makes steady-state EM
/// iterations allocation-free. Plane contents are **not** cleared between
/// calls — whatever the previous call left behind is still there, and
/// callers must overwrite (or explicitly zero) everything they read.
#[derive(Debug, Default)]
pub struct EmWorkspace {
    planes: Vec<Vec<f64>>,
    /// Plane handoffs the NaN canary found non-finite values in
    /// (debug builds; stays 0 in release).
    tainted_handoffs: usize,
    /// Stage label of the first tainted handoff.
    first_taint: Option<&'static str>,
    /// Per-iteration log-likelihood gain sink (the discrepancy-stop
    /// residual trace); wired by the streaming estimator.
    ll_trace: Option<dam_obs::Trace>,
}

impl EmWorkspace {
    /// An empty workspace; planes materialise on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Borrows `N` scratch planes resized to `sizes`.
    ///
    /// Growing a plane past its capacity allocates (zero-filling the new
    /// tail); shrinking or matching the previous size is allocation-free,
    /// so a fixed-size caller pays for its buffers exactly once.
    pub fn planes<const N: usize>(&mut self, sizes: [usize; N]) -> [&mut Vec<f64>; N] {
        if self.planes.len() < N {
            self.planes.resize_with(N, Vec::new);
        }
        let head = &mut self.planes[..N];
        for (plane, &len) in head.iter_mut().zip(&sizes) {
            plane.resize(len, 0.0);
        }
        let mut it = head.iter_mut();
        // lint: allow(no-panic-in-lib, head has exactly N elements, so N next() calls all succeed)
        std::array::from_fn(|_| it.next().expect("plane count matches N"))
    }

    /// Debug-gated NaN canary on a plane handoff between EM stages.
    ///
    /// Scans `buf` for non-finite values (debug builds only; free in
    /// release) and *records* taint — count plus the first offending
    /// stage label — without panicking, because a hostile channel
    /// producing NaN is a supported input: the EM loop's divergence
    /// guard reseeds and the run stays finite. The canary complements
    /// that guard by naming the stage the corruption *entered* at
    /// (`apply` vs `adjoint`), which the guard's post-hoc check cannot.
    pub fn audit_handoff(&mut self, stage: &'static str, buf: &[f64]) {
        if cfg!(debug_assertions) && buf.iter().any(|x| !x.is_finite()) {
            self.tainted_handoffs += 1;
            if self.first_taint.is_none() {
                self.first_taint = Some(stage);
            }
        }
    }

    /// How many handoffs the canary found tainted (0 in release builds).
    pub fn tainted_handoffs(&self) -> usize {
        self.tainted_handoffs
    }

    /// Stage label of the first tainted handoff, if any.
    pub fn first_taint(&self) -> Option<&'static str> {
        self.first_taint
    }

    /// Wires a [`dam_obs::Trace`] to receive the per-report
    /// log-likelihood gain of every EM iteration run through this
    /// workspace. The trace is the raw material for a future
    /// discrepancy-principle stopping rule; recording is sequential
    /// (the EM loop is single-threaded), so the trace is deterministic.
    pub fn set_ll_trace(&mut self, trace: dam_obs::Trace) {
        self.ll_trace = Some(trace);
    }

    /// Detaches the ll-gain trace, if any.
    pub fn clear_ll_trace(&mut self) {
        self.ll_trace = None;
    }
}

/// The two linear-algebra primitives EM needs from a reporting channel.
///
/// Implementations must behave like a column-stochastic matrix `M` of
/// shape `n_out × n_in` (`Σ_o M[o,i] = 1` for every `i`), but are free to
/// represent it implicitly.
pub trait ChannelOp {
    /// Number of input symbols.
    fn n_in(&self) -> usize;

    /// Number of output symbols.
    fn n_out(&self) -> usize;

    /// E-step product: `out[o] = Σ_i M[o,i]·f[i]`.
    ///
    /// `f.len()` must be `n_in()`, `out.len()` must be `n_out()`. `ws`
    /// provides reusable scratch; implementations without scratch needs
    /// ignore it.
    fn apply(&self, f: &[f64], out: &mut [f64], ws: &mut EmWorkspace);

    /// M-step update: `f_new[i] = f[i] · Σ_o w[o]·M[o,i]`.
    ///
    /// `w.len()` must be `n_out()`; `f.len()` and `f_new.len()` must be
    /// `n_in()`. Entries of `w` may be zero (outputs with no observations
    /// contribute nothing). `ws` provides reusable scratch.
    fn accumulate_adjoint(&self, w: &[f64], f: &[f64], f_new: &mut [f64], ws: &mut EmWorkspace);
}

/// Dense channel matrix: `n_out × n_in`, column-stochastic
/// (`Σ_o at(o, i) = 1` for every input `i`).
///
/// This is the *reference* [`ChannelOp`]: exact but quadratic. Prefer a
/// structured operator (e.g. `dam-core`'s `ConvChannel`) whenever the
/// channel has exploitable structure.
#[derive(Debug, Clone)]
pub struct Channel {
    /// Number of output symbols.
    pub n_out: usize,
    /// Number of input symbols.
    pub n_in: usize,
    /// Row-major probabilities `data[o * n_in + i] = P(o | i)`.
    pub data: Vec<f64>,
}

impl Channel {
    /// Builds a channel from row-major values, checking the shape.
    ///
    /// Column-stochasticity is verified only in debug builds (the scan is
    /// O(n_out·n_in), which would double the cost of constructing large
    /// dense channels in release mode); call [`Channel::validate`] to
    /// check it explicitly.
    pub fn new(n_out: usize, n_in: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), n_out * n_in, "channel data does not match shape");
        let channel = Self { n_out, n_in, data };
        #[cfg(debug_assertions)]
        channel.validate();
        channel
    }

    /// Panics unless every column sums to 1 (within 1e-6). O(n_out·n_in).
    pub fn validate(&self) {
        for i in 0..self.n_in {
            let col: f64 = (0..self.n_out).map(|o| self.data[o * self.n_in + i]).sum();
            assert!((col - 1.0).abs() < 1e-6, "channel column {i} sums to {col}, expected 1");
        }
    }

    /// `P(output o | input i)`.
    #[inline]
    pub fn at(&self, o: usize, i: usize) -> f64 {
        self.data[o * self.n_in + i]
    }
}

impl ChannelOp for Channel {
    #[inline]
    fn n_in(&self) -> usize {
        self.n_in
    }

    #[inline]
    fn n_out(&self) -> usize {
        self.n_out
    }

    fn apply(&self, f: &[f64], out: &mut [f64], _ws: &mut EmWorkspace) {
        debug_assert_eq!(f.len(), self.n_in);
        debug_assert_eq!(out.len(), self.n_out);
        for (o, out_o) in out.iter_mut().enumerate() {
            let row = &self.data[o * self.n_in..(o + 1) * self.n_in];
            *out_o = row.iter().zip(f).map(|(&m, &x)| m * x).sum();
        }
    }

    fn accumulate_adjoint(&self, w: &[f64], f: &[f64], f_new: &mut [f64], _ws: &mut EmWorkspace) {
        debug_assert_eq!(w.len(), self.n_out);
        debug_assert_eq!(f.len(), self.n_in);
        debug_assert_eq!(f_new.len(), self.n_in);
        f_new.fill(0.0);
        for (o, &wo) in w.iter().enumerate() {
            if wo == 0.0 {
                continue;
            }
            let row = &self.data[o * self.n_in..(o + 1) * self.n_in];
            for (acc, &m) in f_new.iter_mut().zip(row) {
                *acc += wo * m;
            }
        }
        for (acc, &fi) in f_new.iter_mut().zip(f) {
            *acc *= fi;
        }
    }
}

/// Convergence knobs for [`expectation_maximization`].
#[derive(Debug, Clone, Copy)]
pub struct EmParams {
    /// Hard iteration cap.
    pub max_iters: usize,
    /// Stop when the relative log-likelihood improvement falls below this.
    pub rel_tol: f64,
    /// Stop when the **per-report** log-likelihood gain of one iteration
    /// falls below this (`0.0` disables — the historical behaviour).
    /// `rel_tol` divides by the total likelihood, whose magnitude grows
    /// with the report count, so it effectively tightens as streams get
    /// heavier; the per-report gain is scale-free. Because the threshold
    /// is on *marginal fit quality*, a warm-started run and a cold run
    /// stop at the same point of their shared objective — the warm run
    /// just starts near it, which is what turns steady-state streaming
    /// windows into a handful of iterations.
    pub gain_tol: f64,
}

impl Default for EmParams {
    fn default() -> Self {
        Self { max_iters: 1000, rel_tol: 1e-7, gain_tol: 0.0 }
    }
}

impl EmParams {
    /// Warm streaming-window defaults: a **small iteration budget** plus
    /// the per-report-gain early stop. The budget is doing double duty.
    /// EM for this deconvolution problem *overfits the privacy noise* as
    /// it approaches the ML optimum (classic Richardson–Lucy behaviour:
    /// estimation error against the true distribution is U-shaped in the
    /// iteration count), so early stopping is the regularizer — and a
    /// warm start from the previous window's already-regularized estimate
    /// only needs a few steps to absorb one epoch's worth of new
    /// evidence. Measured in `fig_stream` (with the diffusion-forecast
    /// seed of `dam_stream`): this budget tracks moving foci with TV/W₂
    /// at parity or better against the one-shot 150-iteration protocol
    /// at 3× fewer iterations per window (50 vs 150).
    pub fn streaming() -> Self {
        Self { max_iters: 50, rel_tol: 1e-9, gain_tol: 1e-7 }
    }
}

/// Numerical-health accounting of one EM run: what the solver had to
/// repair to keep producing a finite distribution.
///
/// A long-running pipeline cannot treat a corrupted count plane or a
/// diverged iteration as fatal — the stream keeps coming. Instead of
/// panicking (or silently returning `NaN` everywhere, which is worse),
/// [`expectation_maximization_warm`] detects the degenerate cases,
/// recovers, and reports what happened here so the caller's health
/// surface can expose it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EmHealth {
    /// Count-plane entries that were non-finite or negative and were
    /// zeroed before the run.
    pub sanitized_counts: usize,
    /// Warm-start entries that were non-finite or negative and were
    /// zeroed before the uniform blend.
    pub sanitized_init: usize,
    /// Times the iteration diverged to a non-finite estimate (or
    /// log-likelihood) and was re-seeded from the blend of the last good
    /// estimate with uniform.
    pub reseeds: usize,
    /// The (sanitized) counts summed to zero: there was nothing to fit,
    /// and the uniform distribution was returned without iterating.
    pub degenerate_input: bool,
}

impl EmHealth {
    /// `true` when the run needed no repair at all.
    #[inline]
    pub fn is_clean(&self) -> bool {
        *self == EmHealth::default()
    }

    /// Folds another run's accounting into this one (`degenerate_input`
    /// is sticky).
    pub fn merge(&mut self, other: &EmHealth) {
        self.sanitized_counts += other.sanitized_counts;
        self.sanitized_init += other.sanitized_init;
        self.reseeds += other.reseeds;
        self.degenerate_input |= other.degenerate_input;
    }
}

/// Outcome of one EM run: the estimate plus how many iterations it took —
/// the accounting a warm-started (streaming) caller needs to measure how
/// much a previous window's solution buys over the cold uniform start —
/// and the numerical-health record of what the solver had to repair.
#[derive(Debug, Clone)]
pub struct EmRun {
    /// Estimated input distribution (sums to 1).
    pub estimate: Vec<f64>,
    /// Iterations actually executed (≤ `EmParams::max_iters`).
    pub iters: usize,
    /// What the solver repaired along the way ([`EmHealth::is_clean`] on
    /// every healthy run).
    pub health: EmHealth,
}

/// Zero-guard blend for warm starts: EM's multiplicative update can never
/// regrow an exactly-zero coordinate, so a warm start that inherits hard
/// zeros would be blind to mass moving into previously-empty cells. The
/// blend here is the *minimal* guard that keeps every coordinate alive;
/// callers tracking a **moving** distribution should mix their own, much
/// stronger uniform share into `init` before calling (growth from a tiny
/// floor is geometric, so a near-zero launch level makes EM crawl — see
/// `dam_stream`'s tracking blend).
const WARM_UNIFORM_MIX: f64 = 1e-6;

/// How many divergence re-seeds one run will attempt before giving up and
/// returning the sanitized best effort. Divergence here is pathological
/// (corrupted counts, a broken channel) — if blending back towards
/// uniform three times has not restored a finite iteration, more attempts
/// will not either.
const MAX_RESEEDS: usize = 3;

/// Runs EM (optionally with a smoothing step — "EMS") and returns the
/// estimated input distribution (sums to 1).
///
/// `counts[o]` is how many users reported output `o`. `smoother`, when
/// provided, is applied to the estimate after each M-step (it may leave the
/// vector un-normalised; EM renormalises). The channel may be any
/// [`ChannelOp`] — dense or structured.
pub fn expectation_maximization<C: ChannelOp + ?Sized>(
    channel: &C,
    counts: &[f64],
    smoother: Option<&dyn Fn(&mut [f64])>,
    params: EmParams,
) -> Vec<f64> {
    expectation_maximization_in(channel, counts, smoother, params, &mut EmWorkspace::new())
}

/// [`expectation_maximization`] with a caller-supplied [`EmWorkspace`], so
/// repeated EM runs against same-shaped channels reuse all scratch (the
/// workspace is threaded through every `apply`/`accumulate_adjoint`;
/// steady-state iterations allocate nothing).
pub fn expectation_maximization_in<C: ChannelOp + ?Sized>(
    channel: &C,
    counts: &[f64],
    smoother: Option<&dyn Fn(&mut [f64])>,
    params: EmParams,
    ws: &mut EmWorkspace,
) -> Vec<f64> {
    expectation_maximization_warm(channel, counts, None, smoother, params, ws).estimate
}

/// [`expectation_maximization_in`] with an optional **warm start**,
/// iteration accounting and graceful numerical degradation.
///
/// `init`, when provided, seeds the iteration with a previous estimate
/// (blended with a tiny uniform floor so exact zeros stay recoverable)
/// instead of the uniform distribution. A warm start near the optimum
/// converges under `params.rel_tol` in a handful of iterations — the
/// mechanism the sliding-window streaming estimator relies on — and the
/// returned [`EmRun::iters`] records exactly how many it took, so callers
/// can measure the warm-vs-cold ratio.
///
/// The run never panics on degenerate numerics and never returns a
/// non-finite estimate; it repairs and records in [`EmRun::health`]:
///
/// * non-finite / negative **count** entries are zeroed before the run
///   (`sanitized_counts`);
/// * non-finite / negative **warm-start** entries are zeroed before the
///   uniform blend (`sanitized_init`);
/// * counts summing to zero return the uniform distribution without
///   iterating (`degenerate_input`) — there is nothing to fit;
/// * an iteration diverging to a non-finite estimate or log-likelihood is
///   re-seeded from `½·(last good estimate) + ½·uniform` (`reseeds`), up
///   to [`MAX_RESEEDS`] times; after that the last good estimate is
///   returned as the best effort.
pub fn expectation_maximization_warm<C: ChannelOp + ?Sized>(
    channel: &C,
    counts: &[f64],
    init: Option<&[f64]>,
    smoother: Option<&dyn Fn(&mut [f64])>,
    params: EmParams,
    ws: &mut EmWorkspace,
) -> EmRun {
    assert_eq!(counts.len(), channel.n_out(), "counts do not match channel outputs");
    let (n_out, n_in) = (channel.n_out(), channel.n_in());
    let uniform = 1.0 / n_in as f64;
    let mut health = EmHealth::default();

    // Sanitize the observation plane up front; the clean (overwhelmingly
    // common) path borrows the caller's slice and allocates nothing extra.
    let bad = counts.iter().filter(|c| !c.is_finite() || **c < 0.0).count();
    let sanitized_counts: Vec<f64>;
    let counts: &[f64] = if bad > 0 {
        health.sanitized_counts = bad;
        sanitized_counts =
            counts.iter().map(|&c| if c.is_finite() && c >= 0.0 { c } else { 0.0 }).collect();
        &sanitized_counts
    } else {
        counts
    };
    let n_total: f64 = counts.iter().sum();
    if n_total <= 0.0 {
        // Nothing observed (or everything quarantined): the maximum-
        // likelihood answer is undefined, so degrade to uniform instead
        // of panicking mid-stream.
        health.degenerate_input = true;
        return EmRun { estimate: vec![uniform; n_in], iters: 0, health };
    }

    let mut f = match init {
        Some(prev) => {
            assert_eq!(prev.len(), n_in, "warm start does not match channel inputs");
            health.sanitized_init = prev.iter().filter(|p| !p.is_finite() || **p < 0.0).count();
            let mut f: Vec<f64> = prev
                .iter()
                .map(|&p| {
                    let p = if p.is_finite() && p >= 0.0 { p } else { 0.0 };
                    (1.0 - WARM_UNIFORM_MIX) * p + WARM_UNIFORM_MIX * uniform
                })
                .collect();
            normalize(&mut f);
            f
        }
        None => vec![uniform; n_in],
    };
    let mut f_new = vec![0.0f64; n_in];
    let mut out = vec![0.0f64; n_out];
    let mut weights = vec![0.0f64; n_out];
    let mut prev_ll = f64::NEG_INFINITY;
    let mut iters = 0usize;

    for _ in 0..params.max_iters {
        iters += 1;
        // E: predicted output distribution under the current estimate.
        channel.apply(&f, &mut out, ws);
        ws.audit_handoff("apply", &out);
        // Observed-data log-likelihood of the current estimate (also the
        // divergence sentinel: a corrupted `out` turns it NaN).
        let mut ll = 0.0;
        for (&c, &p) in counts.iter().zip(out.iter()) {
            if c > 0.0 {
                ll += c * p.max(1e-300).ln();
            }
        }
        // M: multiplicative update through the adjoint.
        for ((w, &c), &p) in weights.iter_mut().zip(counts).zip(out.iter()) {
            *w = if c == 0.0 || p <= 0.0 { 0.0 } else { c / n_total / p };
        }
        channel.accumulate_adjoint(&weights, &f, &mut f_new, ws);
        ws.audit_handoff("adjoint", &f_new);

        // Divergence guard — checked *before* normalisation, whose
        // zero-sum fallback would otherwise flatten a NaN update to
        // uniform silently. At this point `f` still holds the last good
        // (finite, by induction) estimate, so recovery re-seeds from its
        // blend with uniform rather than restarting cold.
        if !ll.is_finite() || f_new.iter().any(|x| !x.is_finite()) {
            if health.reseeds >= MAX_RESEEDS {
                // Best effort: return the last finite estimate as-is.
                break;
            }
            health.reseeds += 1;
            for x in f.iter_mut() {
                *x = 0.5 * *x + 0.5 * uniform;
            }
            normalize(&mut f);
            prev_ll = f64::NEG_INFINITY;
            continue;
        }

        normalize(&mut f_new);
        if let Some(s) = smoother {
            s(&mut f_new);
            normalize(&mut f_new);
        }
        std::mem::swap(&mut f, &mut f_new);

        if prev_ll.is_finite() {
            let gain = (ll - prev_ll).abs();
            if let Some(trace) = ws.ll_trace.as_ref() {
                trace.push(gain / n_total);
            }
            if gain / prev_ll.abs().max(1e-12) < params.rel_tol {
                break;
            }
            if params.gain_tol > 0.0 && gain / n_total < params.gain_tol {
                break;
            }
        }
        prev_ll = ll;
    }
    EmRun { estimate: f, iters, health }
}

/// The 1-D binomial smoother of SW-EMS: weighted average with kernel
/// `[1, 2, 1] / 4`, renormalising the kernel at the boundaries.
pub fn smooth_1d(f: &mut [f64]) {
    if f.len() < 3 {
        return;
    }
    let src = f.to_vec();
    for i in 0..src.len() {
        let mut num = 2.0 * src[i];
        let mut den = 2.0;
        if i > 0 {
            num += src[i - 1];
            den += 1.0;
        }
        if i + 1 < src.len() {
            num += src[i + 1];
            den += 1.0;
        }
        f[i] = num / den;
    }
}

fn normalize(f: &mut [f64]) {
    let s: f64 = f.iter().sum();
    if s > 0.0 {
        for x in f.iter_mut() {
            *x /= s;
        }
    } else {
        let u = 1.0 / f.len() as f64;
        f.fill(u);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small noisy channel: identity with symmetric leakage.
    fn noisy_channel(n: usize, keep: f64) -> Channel {
        let leak = (1.0 - keep) / (n - 1) as f64;
        let mut data = vec![0.0; n * n];
        for o in 0..n {
            for i in 0..n {
                data[o * n + i] = if o == i { keep } else { leak };
            }
        }
        Channel::new(n, n, data)
    }

    #[test]
    fn identity_channel_recovers_input_exactly() {
        let ch = noisy_channel(4, 1.0 - 1e-12);
        let counts = [40.0, 30.0, 20.0, 10.0];
        let f = expectation_maximization(&ch, &counts, None, EmParams::default());
        for (i, expect) in [0.4, 0.3, 0.2, 0.1].iter().enumerate() {
            assert!((f[i] - expect).abs() < 1e-6, "bin {i}: {} vs {expect}", f[i]);
        }
    }

    #[test]
    fn noisy_channel_is_deconvolved() {
        // Expected output counts under keep=0.6 for input (0.7, 0.2, 0.1):
        // feed exact expected counts; EM must invert the channel.
        let ch = noisy_channel(3, 0.6);
        let input = [0.7, 0.2, 0.1];
        let mut counts = vec![0.0; 3];
        for o in 0..3 {
            for i in 0..3 {
                counts[o] += 1e6 * ch.at(o, i) * input[i];
            }
        }
        let f = expectation_maximization(
            &ch,
            &counts,
            None,
            EmParams { max_iters: 5000, rel_tol: 1e-12, gain_tol: 0.0 },
        );
        for i in 0..3 {
            assert!((f[i] - input[i]).abs() < 1e-3, "bin {i}: {} vs {}", f[i], input[i]);
        }
    }

    #[test]
    fn estimate_is_a_distribution() {
        let ch = noisy_channel(5, 0.5);
        let counts = [10.0, 0.0, 5.0, 0.0, 100.0];
        let f = expectation_maximization(&ch, &counts, None, EmParams::default());
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(f.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn apply_matches_manual_matvec() {
        let ch = noisy_channel(4, 0.7);
        let f = [0.4, 0.3, 0.2, 0.1];
        let mut out = vec![0.0; 4];
        ch.apply(&f, &mut out, &mut EmWorkspace::new());
        for o in 0..4 {
            let manual: f64 = (0..4).map(|i| ch.at(o, i) * f[i]).sum();
            assert!((out[o] - manual).abs() < 1e-15);
        }
        // A stochastic matrix maps distributions to distributions.
        assert!((out.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn adjoint_matches_manual_update() {
        let ch = noisy_channel(3, 0.6);
        let f = [0.5, 0.3, 0.2];
        let w = [0.7, 0.0, 1.3];
        let mut f_new = vec![0.0; 3];
        ch.accumulate_adjoint(&w, &f, &mut f_new, &mut EmWorkspace::new());
        for i in 0..3 {
            let manual: f64 = (0..3).map(|o| w[o] * ch.at(o, i)).sum::<f64>() * f[i];
            assert!((f_new[i] - manual).abs() < 1e-15, "bin {i}");
        }
    }

    #[test]
    fn em_accepts_dyn_channel_op() {
        let ch = noisy_channel(3, 0.8);
        let dyn_ch: &dyn ChannelOp = &ch;
        let counts = [50.0, 30.0, 20.0];
        let f = expectation_maximization(dyn_ch, &counts, None, EmParams::default());
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn smoothing_pulls_towards_neighbours() {
        let mut f = vec![0.0, 1.0, 0.0];
        smooth_1d(&mut f);
        assert!(f[0] > 0.0 && f[2] > 0.0 && f[1] < 1.0);
        // Symmetric input stays symmetric.
        assert!((f[0] - f[2]).abs() < 1e-12);
    }

    #[test]
    fn smoothing_preserves_uniform() {
        let mut f = vec![0.25; 4];
        smooth_1d(&mut f);
        for x in &f {
            assert!((x - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn smoothing_length_one_and_two_are_identity() {
        // Below three bins there is no interior cell to smooth; the kernel
        // degenerates and the vector must pass through untouched (pinning
        // the `len < 3` early return, including the empty slice).
        let mut empty: Vec<f64> = vec![];
        smooth_1d(&mut empty);
        assert!(empty.is_empty());

        let mut one = vec![0.7];
        smooth_1d(&mut one);
        assert_eq!(one, vec![0.7]);

        let mut two = vec![0.9, 0.1];
        smooth_1d(&mut two);
        assert_eq!(two, vec![0.9, 0.1], "length-2 input must not be averaged");
    }

    #[test]
    fn smoothing_length_three_boundary_weights() {
        // Length 3 is the smallest smoothed case: ends renormalise to
        // [2,1]/3, the middle uses the full [1,2,1]/4 kernel.
        let mut f = vec![1.0, 0.0, 0.0];
        smooth_1d(&mut f);
        assert!((f[0] - 2.0 / 3.0).abs() < 1e-15);
        assert!((f[1] - 0.25).abs() < 1e-15);
        assert!((f[2] - 0.0).abs() < 1e-15);
    }

    #[test]
    fn workspace_planes_reuse_allocation() {
        let mut ws = EmWorkspace::new();
        let ptrs: Vec<*const f64> = {
            let [a, b] = ws.planes([32, 64]);
            a.fill(1.0);
            b.fill(2.0);
            vec![a.as_ptr(), b.as_ptr()]
        };
        // Same sizes again: same allocations, contents preserved.
        let [a, b] = ws.planes([32, 64]);
        assert_eq!(a.as_ptr(), ptrs[0]);
        assert_eq!(b.as_ptr(), ptrs[1]);
        assert!(a.iter().all(|&x| x == 1.0));
        assert!(b.iter().all(|&x| x == 2.0));
        // Growing reallocates but zero-fills only the new tail.
        let [a2] = ws.planes([48]);
        assert_eq!(a2.len(), 48);
        assert!(a2[..32].iter().all(|&x| x == 1.0));
        assert!(a2[32..].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn warm_start_converges_in_fewer_iterations() {
        // Cold vs warm on the same counts: seeding with the converged
        // estimate must hit the relative-tolerance stop in a handful of
        // iterations, and land on (numerically) the same optimum.
        let ch = noisy_channel(6, 0.55);
        let counts = [400.0, 250.0, 150.0, 100.0, 60.0, 40.0];
        let params = EmParams { max_iters: 500, rel_tol: 1e-9, gain_tol: 0.0 };
        let mut ws = EmWorkspace::new();
        let cold = expectation_maximization_warm(&ch, &counts, None, None, params, &mut ws);
        let warm = expectation_maximization_warm(
            &ch,
            &counts,
            Some(&cold.estimate),
            None,
            params,
            &mut ws,
        );
        assert!(
            warm.iters < cold.iters / 2,
            "warm start took {} iters vs cold {}",
            warm.iters,
            cold.iters
        );
        for (w, c) in warm.estimate.iter().zip(&cold.estimate) {
            assert!((w - c).abs() < 1e-4, "warm and cold optima diverged: {w} vs {c}");
        }
    }

    #[test]
    fn warm_start_escapes_inherited_zeros() {
        // A warm start carrying a hard zero must still be able to put
        // mass there (the uniform blend keeps the coordinate alive).
        let ch = noisy_channel(3, 0.7);
        let input = [0.2, 0.3, 0.5];
        let mut counts = vec![0.0; 3];
        for o in 0..3 {
            for i in 0..3 {
                counts[o] += 1e6 * ch.at(o, i) * input[i];
            }
        }
        let stale = [0.5, 0.5, 0.0];
        let run = expectation_maximization_warm(
            &ch,
            &counts,
            Some(&stale),
            None,
            EmParams { max_iters: 5000, rel_tol: 1e-12, gain_tol: 0.0 },
            &mut EmWorkspace::new(),
        );
        assert!(
            (run.estimate[2] - 0.5).abs() < 1e-3,
            "zeroed coordinate failed to regrow: {}",
            run.estimate[2]
        );
    }

    #[test]
    fn warm_entry_without_init_matches_cold_path() {
        let ch = noisy_channel(4, 0.6);
        let counts = [40.0, 30.0, 20.0, 10.0];
        let params = EmParams::default();
        let via_in = expectation_maximization(&ch, &counts, None, params);
        let via_warm = expectation_maximization_warm(
            &ch,
            &counts,
            None,
            None,
            params,
            &mut EmWorkspace::new(),
        );
        assert_eq!(via_in, via_warm.estimate, "delegation must be exact");
        assert!(via_warm.iters >= 1 && via_warm.iters <= params.max_iters);
    }

    #[test]
    fn zero_total_counts_degrade_to_uniform() {
        let ch = noisy_channel(4, 0.7);
        for counts in [vec![0.0; 4], vec![-1.0, f64::NAN, 0.0, f64::NEG_INFINITY]] {
            let run = expectation_maximization_warm(
                &ch,
                &counts,
                None,
                None,
                EmParams::default(),
                &mut EmWorkspace::new(),
            );
            assert!(run.health.degenerate_input);
            assert_eq!(run.iters, 0);
            assert_eq!(run.estimate, vec![0.25; 4]);
        }
    }

    #[test]
    fn corrupted_counts_are_sanitized_and_fit_proceeds() {
        let ch = noisy_channel(4, 0.8);
        let clean = [40.0, 30.0, 20.0, 10.0];
        let mut dirty = clean.to_vec();
        dirty[1] = f64::NAN;
        dirty[3] = f64::INFINITY;
        let run = expectation_maximization_warm(
            &ch,
            &dirty,
            None,
            None,
            EmParams::default(),
            &mut EmWorkspace::new(),
        );
        assert_eq!(run.health.sanitized_counts, 2);
        assert!(!run.health.degenerate_input);
        assert!((run.estimate.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(run.estimate.iter().all(|x| x.is_finite() && *x >= 0.0));
        // Must match the run on the explicitly-zeroed plane exactly.
        let zeroed = [40.0, 0.0, 20.0, 0.0];
        let reference = expectation_maximization_warm(
            &ch,
            &zeroed,
            None,
            None,
            EmParams::default(),
            &mut EmWorkspace::new(),
        );
        assert_eq!(run.estimate, reference.estimate);
        assert!(reference.health.is_clean());
    }

    #[test]
    fn corrupted_warm_start_is_sanitized() {
        let ch = noisy_channel(3, 0.7);
        let counts = [50.0, 30.0, 20.0];
        let stale = [f64::NAN, 0.6, 0.4];
        let run = expectation_maximization_warm(
            &ch,
            &counts,
            Some(&stale),
            None,
            EmParams::default(),
            &mut EmWorkspace::new(),
        );
        assert_eq!(run.health.sanitized_init, 1);
        assert!(run.estimate.iter().all(|x| x.is_finite() && *x >= 0.0));
        assert!((run.estimate.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn diverging_channel_is_reseeded_and_stays_finite() {
        // A hostile ChannelOp that fabricates NaN from iteration 2 on:
        // the divergence guard must re-seed (recording it) and the run
        // must still return a finite distribution.
        struct Hostile {
            inner: Channel,
            calls: std::cell::Cell<usize>,
        }
        impl ChannelOp for Hostile {
            fn n_in(&self) -> usize {
                self.inner.n_in
            }
            fn n_out(&self) -> usize {
                self.inner.n_out
            }
            fn apply(&self, f: &[f64], out: &mut [f64], ws: &mut EmWorkspace) {
                self.inner.apply(f, out, ws);
            }
            fn accumulate_adjoint(
                &self,
                w: &[f64],
                f: &[f64],
                f_new: &mut [f64],
                ws: &mut EmWorkspace,
            ) {
                self.inner.accumulate_adjoint(w, f, f_new, ws);
                let k = self.calls.get() + 1;
                self.calls.set(k);
                if k >= 2 {
                    f_new[0] = f64::NAN;
                }
            }
        }
        let hostile = Hostile { inner: noisy_channel(4, 0.7), calls: std::cell::Cell::new(0) };
        let counts = [40.0, 30.0, 20.0, 10.0];
        let mut ws = EmWorkspace::new();
        let run = expectation_maximization_warm(
            &hostile,
            &counts,
            None,
            None,
            EmParams { max_iters: 20, rel_tol: 1e-9, gain_tol: 0.0 },
            &mut ws,
        );
        assert!(run.health.reseeds >= 1, "divergence must be recorded");
        assert!(run.estimate.iter().all(|x| x.is_finite() && *x >= 0.0));
        assert!((run.estimate.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // The NaN canary names the stage the corruption entered at —
        // without aborting the (supported, recoverable) hostile run.
        if cfg!(debug_assertions) {
            assert!(ws.tainted_handoffs() >= 1, "canary must record the tainted handoff");
            assert_eq!(ws.first_taint(), Some("adjoint"));
        }
    }

    #[test]
    fn clean_runs_leave_the_canary_silent() {
        let ch = noisy_channel(4, 0.6);
        let counts = [40.0, 30.0, 20.0, 10.0];
        let mut ws = EmWorkspace::new();
        let _ =
            expectation_maximization_warm(&ch, &counts, None, None, EmParams::default(), &mut ws);
        assert_eq!(ws.tainted_handoffs(), 0);
        assert_eq!(ws.first_taint(), None);
    }

    #[test]
    fn clean_runs_report_clean_health() {
        let ch = noisy_channel(4, 0.6);
        let counts = [40.0, 30.0, 20.0, 10.0];
        let run = expectation_maximization_warm(
            &ch,
            &counts,
            None,
            None,
            EmParams::default(),
            &mut EmWorkspace::new(),
        );
        assert!(run.health.is_clean());
        let mut merged = EmHealth::default();
        merged.merge(&run.health);
        merged.merge(&EmHealth { reseeds: 2, degenerate_input: true, ..EmHealth::default() });
        assert_eq!(merged.reseeds, 2);
        assert!(merged.degenerate_input);
        assert!(!merged.is_clean());
    }

    #[test]
    #[should_panic(expected = "column")]
    fn validate_rejects_non_stochastic() {
        let ch = Channel { n_out: 2, n_in: 2, data: vec![0.5, 0.5, 0.2, 0.5] };
        ch.validate();
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "column")]
    fn channel_rejects_non_stochastic_in_debug() {
        Channel::new(2, 2, vec![0.5, 0.5, 0.2, 0.5]);
    }
}
