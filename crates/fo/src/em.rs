//! Expectation-Maximisation post-processing ("PostProcess" in Algorithm 1).
//!
//! Given a known randomisation channel `M` (`P(output | input)`) and the
//! histogram of observed outputs, EM finds a maximum-likelihood input
//! distribution. Li et al. \[6\] add a smoothing step between iterations
//! ("EMS") that regularises the estimate towards ordinal smoothness; the
//! paper's PostProcess uses the same machinery on the 2-D grid (the 2-D
//! smoother lives in `dam-core`).
//!
//! # Operator-based EM
//!
//! [`expectation_maximization`] never touches matrix entries directly: it
//! is generic over [`ChannelOp`], which exposes the only two primitives EM
//! needs —
//!
//! * `apply` — the E-step product `M·f` (predicted output distribution);
//! * `accumulate_adjoint` — the M-step update `f ⊙ Mᵀw` for a weight
//!   vector `w` derived from the observed counts.
//!
//! The dense [`Channel`] is the reference implementation (O(n_out·n_in)
//! per iteration). Structured channels — notably the translation-invariant
//! `ConvChannel` and the spectral `FftChannel` in `dam-core` — implement
//! the same trait and drop straight into every EM call site, so the
//! estimator pipeline never materialises an `n_out × n_in` matrix.
//!
//! Both primitives take an [`EmWorkspace`]: a bag of reusable scratch
//! planes a structured operator can carve its per-call buffers out of
//! (padded grids, FFT spectra, …). The workspace is created once per EM
//! run, so steady-state iterations allocate nothing; operators that need
//! no scratch (the dense channel, the stencil) simply ignore it.

/// Reusable scratch planes for [`ChannelOp`] primitives.
///
/// An operator asks for its scratch through [`EmWorkspace::planes`]; the
/// buffers are allocated on first use and reused verbatim on every later
/// call with the same sizes, which is what makes steady-state EM
/// iterations allocation-free. Plane contents are **not** cleared between
/// calls — whatever the previous call left behind is still there, and
/// callers must overwrite (or explicitly zero) everything they read.
#[derive(Debug, Default)]
pub struct EmWorkspace {
    planes: Vec<Vec<f64>>,
}

impl EmWorkspace {
    /// An empty workspace; planes materialise on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Borrows `N` scratch planes resized to `sizes`.
    ///
    /// Growing a plane past its capacity allocates (zero-filling the new
    /// tail); shrinking or matching the previous size is allocation-free,
    /// so a fixed-size caller pays for its buffers exactly once.
    pub fn planes<const N: usize>(&mut self, sizes: [usize; N]) -> [&mut Vec<f64>; N] {
        if self.planes.len() < N {
            self.planes.resize_with(N, Vec::new);
        }
        let head = &mut self.planes[..N];
        for (plane, &len) in head.iter_mut().zip(&sizes) {
            plane.resize(len, 0.0);
        }
        let mut it = head.iter_mut();
        std::array::from_fn(|_| it.next().expect("plane count matches N"))
    }
}

/// The two linear-algebra primitives EM needs from a reporting channel.
///
/// Implementations must behave like a column-stochastic matrix `M` of
/// shape `n_out × n_in` (`Σ_o M[o,i] = 1` for every `i`), but are free to
/// represent it implicitly.
pub trait ChannelOp {
    /// Number of input symbols.
    fn n_in(&self) -> usize;

    /// Number of output symbols.
    fn n_out(&self) -> usize;

    /// E-step product: `out[o] = Σ_i M[o,i]·f[i]`.
    ///
    /// `f.len()` must be `n_in()`, `out.len()` must be `n_out()`. `ws`
    /// provides reusable scratch; implementations without scratch needs
    /// ignore it.
    fn apply(&self, f: &[f64], out: &mut [f64], ws: &mut EmWorkspace);

    /// M-step update: `f_new[i] = f[i] · Σ_o w[o]·M[o,i]`.
    ///
    /// `w.len()` must be `n_out()`; `f.len()` and `f_new.len()` must be
    /// `n_in()`. Entries of `w` may be zero (outputs with no observations
    /// contribute nothing). `ws` provides reusable scratch.
    fn accumulate_adjoint(&self, w: &[f64], f: &[f64], f_new: &mut [f64], ws: &mut EmWorkspace);
}

/// Dense channel matrix: `n_out × n_in`, column-stochastic
/// (`Σ_o at(o, i) = 1` for every input `i`).
///
/// This is the *reference* [`ChannelOp`]: exact but quadratic. Prefer a
/// structured operator (e.g. `dam-core`'s `ConvChannel`) whenever the
/// channel has exploitable structure.
#[derive(Debug, Clone)]
pub struct Channel {
    /// Number of output symbols.
    pub n_out: usize,
    /// Number of input symbols.
    pub n_in: usize,
    /// Row-major probabilities `data[o * n_in + i] = P(o | i)`.
    pub data: Vec<f64>,
}

impl Channel {
    /// Builds a channel from row-major values, checking the shape.
    ///
    /// Column-stochasticity is verified only in debug builds (the scan is
    /// O(n_out·n_in), which would double the cost of constructing large
    /// dense channels in release mode); call [`Channel::validate`] to
    /// check it explicitly.
    pub fn new(n_out: usize, n_in: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), n_out * n_in, "channel data does not match shape");
        let channel = Self { n_out, n_in, data };
        #[cfg(debug_assertions)]
        channel.validate();
        channel
    }

    /// Panics unless every column sums to 1 (within 1e-6). O(n_out·n_in).
    pub fn validate(&self) {
        for i in 0..self.n_in {
            let col: f64 = (0..self.n_out).map(|o| self.data[o * self.n_in + i]).sum();
            assert!((col - 1.0).abs() < 1e-6, "channel column {i} sums to {col}, expected 1");
        }
    }

    /// `P(output o | input i)`.
    #[inline]
    pub fn at(&self, o: usize, i: usize) -> f64 {
        self.data[o * self.n_in + i]
    }
}

impl ChannelOp for Channel {
    #[inline]
    fn n_in(&self) -> usize {
        self.n_in
    }

    #[inline]
    fn n_out(&self) -> usize {
        self.n_out
    }

    fn apply(&self, f: &[f64], out: &mut [f64], _ws: &mut EmWorkspace) {
        debug_assert_eq!(f.len(), self.n_in);
        debug_assert_eq!(out.len(), self.n_out);
        for (o, out_o) in out.iter_mut().enumerate() {
            let row = &self.data[o * self.n_in..(o + 1) * self.n_in];
            *out_o = row.iter().zip(f).map(|(&m, &x)| m * x).sum();
        }
    }

    fn accumulate_adjoint(&self, w: &[f64], f: &[f64], f_new: &mut [f64], _ws: &mut EmWorkspace) {
        debug_assert_eq!(w.len(), self.n_out);
        debug_assert_eq!(f.len(), self.n_in);
        debug_assert_eq!(f_new.len(), self.n_in);
        f_new.fill(0.0);
        for (o, &wo) in w.iter().enumerate() {
            if wo == 0.0 {
                continue;
            }
            let row = &self.data[o * self.n_in..(o + 1) * self.n_in];
            for (acc, &m) in f_new.iter_mut().zip(row) {
                *acc += wo * m;
            }
        }
        for (acc, &fi) in f_new.iter_mut().zip(f) {
            *acc *= fi;
        }
    }
}

/// Convergence knobs for [`expectation_maximization`].
#[derive(Debug, Clone, Copy)]
pub struct EmParams {
    /// Hard iteration cap.
    pub max_iters: usize,
    /// Stop when the relative log-likelihood improvement falls below this.
    pub rel_tol: f64,
}

impl Default for EmParams {
    fn default() -> Self {
        Self { max_iters: 1000, rel_tol: 1e-7 }
    }
}

/// Runs EM (optionally with a smoothing step — "EMS") and returns the
/// estimated input distribution (sums to 1).
///
/// `counts[o]` is how many users reported output `o`. `smoother`, when
/// provided, is applied to the estimate after each M-step (it may leave the
/// vector un-normalised; EM renormalises). The channel may be any
/// [`ChannelOp`] — dense or structured.
pub fn expectation_maximization<C: ChannelOp + ?Sized>(
    channel: &C,
    counts: &[f64],
    smoother: Option<&dyn Fn(&mut [f64])>,
    params: EmParams,
) -> Vec<f64> {
    expectation_maximization_in(channel, counts, smoother, params, &mut EmWorkspace::new())
}

/// [`expectation_maximization`] with a caller-supplied [`EmWorkspace`], so
/// repeated EM runs against same-shaped channels reuse all scratch (the
/// workspace is threaded through every `apply`/`accumulate_adjoint`;
/// steady-state iterations allocate nothing).
pub fn expectation_maximization_in<C: ChannelOp + ?Sized>(
    channel: &C,
    counts: &[f64],
    smoother: Option<&dyn Fn(&mut [f64])>,
    params: EmParams,
    ws: &mut EmWorkspace,
) -> Vec<f64> {
    assert_eq!(counts.len(), channel.n_out(), "counts do not match channel outputs");
    let n_total: f64 = counts.iter().sum();
    assert!(n_total > 0.0, "no observations");
    let (n_out, n_in) = (channel.n_out(), channel.n_in());

    let mut f = vec![1.0 / n_in as f64; n_in];
    let mut f_new = vec![0.0f64; n_in];
    let mut out = vec![0.0f64; n_out];
    let mut weights = vec![0.0f64; n_out];
    let mut prev_ll = f64::NEG_INFINITY;

    for _ in 0..params.max_iters {
        // E: predicted output distribution under the current estimate.
        channel.apply(&f, &mut out, ws);
        // M: multiplicative update through the adjoint.
        for ((w, &c), &p) in weights.iter_mut().zip(counts).zip(out.iter()) {
            *w = if c == 0.0 || p <= 0.0 { 0.0 } else { c / n_total / p };
        }
        channel.accumulate_adjoint(&weights, &f, &mut f_new, ws);
        normalize(&mut f_new);
        if let Some(s) = smoother {
            s(&mut f_new);
            normalize(&mut f_new);
        }
        std::mem::swap(&mut f, &mut f_new);

        // Convergence on observed-data log-likelihood.
        let mut ll = 0.0;
        for (&c, &p) in counts.iter().zip(out.iter()) {
            if c > 0.0 {
                ll += c * p.max(1e-300).ln();
            }
        }
        if prev_ll.is_finite() {
            let denom = prev_ll.abs().max(1e-12);
            if (ll - prev_ll).abs() / denom < params.rel_tol {
                break;
            }
        }
        prev_ll = ll;
    }
    f
}

/// The 1-D binomial smoother of SW-EMS: weighted average with kernel
/// `[1, 2, 1] / 4`, renormalising the kernel at the boundaries.
pub fn smooth_1d(f: &mut [f64]) {
    if f.len() < 3 {
        return;
    }
    let src = f.to_vec();
    for i in 0..src.len() {
        let mut num = 2.0 * src[i];
        let mut den = 2.0;
        if i > 0 {
            num += src[i - 1];
            den += 1.0;
        }
        if i + 1 < src.len() {
            num += src[i + 1];
            den += 1.0;
        }
        f[i] = num / den;
    }
}

fn normalize(f: &mut [f64]) {
    let s: f64 = f.iter().sum();
    if s > 0.0 {
        for x in f.iter_mut() {
            *x /= s;
        }
    } else {
        let u = 1.0 / f.len() as f64;
        f.fill(u);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small noisy channel: identity with symmetric leakage.
    fn noisy_channel(n: usize, keep: f64) -> Channel {
        let leak = (1.0 - keep) / (n - 1) as f64;
        let mut data = vec![0.0; n * n];
        for o in 0..n {
            for i in 0..n {
                data[o * n + i] = if o == i { keep } else { leak };
            }
        }
        Channel::new(n, n, data)
    }

    #[test]
    fn identity_channel_recovers_input_exactly() {
        let ch = noisy_channel(4, 1.0 - 1e-12);
        let counts = [40.0, 30.0, 20.0, 10.0];
        let f = expectation_maximization(&ch, &counts, None, EmParams::default());
        for (i, expect) in [0.4, 0.3, 0.2, 0.1].iter().enumerate() {
            assert!((f[i] - expect).abs() < 1e-6, "bin {i}: {} vs {expect}", f[i]);
        }
    }

    #[test]
    fn noisy_channel_is_deconvolved() {
        // Expected output counts under keep=0.6 for input (0.7, 0.2, 0.1):
        // feed exact expected counts; EM must invert the channel.
        let ch = noisy_channel(3, 0.6);
        let input = [0.7, 0.2, 0.1];
        let mut counts = vec![0.0; 3];
        for o in 0..3 {
            for i in 0..3 {
                counts[o] += 1e6 * ch.at(o, i) * input[i];
            }
        }
        let f = expectation_maximization(
            &ch,
            &counts,
            None,
            EmParams { max_iters: 5000, rel_tol: 1e-12 },
        );
        for i in 0..3 {
            assert!((f[i] - input[i]).abs() < 1e-3, "bin {i}: {} vs {}", f[i], input[i]);
        }
    }

    #[test]
    fn estimate_is_a_distribution() {
        let ch = noisy_channel(5, 0.5);
        let counts = [10.0, 0.0, 5.0, 0.0, 100.0];
        let f = expectation_maximization(&ch, &counts, None, EmParams::default());
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(f.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn apply_matches_manual_matvec() {
        let ch = noisy_channel(4, 0.7);
        let f = [0.4, 0.3, 0.2, 0.1];
        let mut out = vec![0.0; 4];
        ch.apply(&f, &mut out, &mut EmWorkspace::new());
        for o in 0..4 {
            let manual: f64 = (0..4).map(|i| ch.at(o, i) * f[i]).sum();
            assert!((out[o] - manual).abs() < 1e-15);
        }
        // A stochastic matrix maps distributions to distributions.
        assert!((out.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn adjoint_matches_manual_update() {
        let ch = noisy_channel(3, 0.6);
        let f = [0.5, 0.3, 0.2];
        let w = [0.7, 0.0, 1.3];
        let mut f_new = vec![0.0; 3];
        ch.accumulate_adjoint(&w, &f, &mut f_new, &mut EmWorkspace::new());
        for i in 0..3 {
            let manual: f64 = (0..3).map(|o| w[o] * ch.at(o, i)).sum::<f64>() * f[i];
            assert!((f_new[i] - manual).abs() < 1e-15, "bin {i}");
        }
    }

    #[test]
    fn em_accepts_dyn_channel_op() {
        let ch = noisy_channel(3, 0.8);
        let dyn_ch: &dyn ChannelOp = &ch;
        let counts = [50.0, 30.0, 20.0];
        let f = expectation_maximization(dyn_ch, &counts, None, EmParams::default());
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn smoothing_pulls_towards_neighbours() {
        let mut f = vec![0.0, 1.0, 0.0];
        smooth_1d(&mut f);
        assert!(f[0] > 0.0 && f[2] > 0.0 && f[1] < 1.0);
        // Symmetric input stays symmetric.
        assert!((f[0] - f[2]).abs() < 1e-12);
    }

    #[test]
    fn smoothing_preserves_uniform() {
        let mut f = vec![0.25; 4];
        smooth_1d(&mut f);
        for x in &f {
            assert!((x - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn smoothing_length_one_and_two_are_identity() {
        // Below three bins there is no interior cell to smooth; the kernel
        // degenerates and the vector must pass through untouched (pinning
        // the `len < 3` early return, including the empty slice).
        let mut empty: Vec<f64> = vec![];
        smooth_1d(&mut empty);
        assert!(empty.is_empty());

        let mut one = vec![0.7];
        smooth_1d(&mut one);
        assert_eq!(one, vec![0.7]);

        let mut two = vec![0.9, 0.1];
        smooth_1d(&mut two);
        assert_eq!(two, vec![0.9, 0.1], "length-2 input must not be averaged");
    }

    #[test]
    fn smoothing_length_three_boundary_weights() {
        // Length 3 is the smallest smoothed case: ends renormalise to
        // [2,1]/3, the middle uses the full [1,2,1]/4 kernel.
        let mut f = vec![1.0, 0.0, 0.0];
        smooth_1d(&mut f);
        assert!((f[0] - 2.0 / 3.0).abs() < 1e-15);
        assert!((f[1] - 0.25).abs() < 1e-15);
        assert!((f[2] - 0.0).abs() < 1e-15);
    }

    #[test]
    fn workspace_planes_reuse_allocation() {
        let mut ws = EmWorkspace::new();
        let ptrs: Vec<*const f64> = {
            let [a, b] = ws.planes([32, 64]);
            a.fill(1.0);
            b.fill(2.0);
            vec![a.as_ptr(), b.as_ptr()]
        };
        // Same sizes again: same allocations, contents preserved.
        let [a, b] = ws.planes([32, 64]);
        assert_eq!(a.as_ptr(), ptrs[0]);
        assert_eq!(b.as_ptr(), ptrs[1]);
        assert!(a.iter().all(|&x| x == 1.0));
        assert!(b.iter().all(|&x| x == 2.0));
        // Growing reallocates but zero-fills only the new tail.
        let [a2] = ws.planes([48]);
        assert_eq!(a2.len(), 48);
        assert!(a2[..32].iter().all(|&x| x == 1.0));
        assert!(a2[32..].iter().all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic(expected = "column")]
    fn validate_rejects_non_stochastic() {
        let ch = Channel { n_out: 2, n_in: 2, data: vec![0.5, 0.5, 0.2, 0.5] };
        ch.validate();
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "column")]
    fn channel_rejects_non_stochastic_in_debug() {
        Channel::new(2, 2, vec![0.5, 0.5, 0.2, 0.5]);
    }
}
