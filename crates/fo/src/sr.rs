//! Stochastic Rounding (Duchi, Wainwright & Jordan \[4\]).
//!
//! The minimax-optimal mean-estimation oracle on `[−1, 1]`: report `+1`
//! with probability `½ + (e^ε − 1)/(2(e^ε + 1)) · v` and `−1` otherwise.
//! Included because the paper's related-work taxonomy (Table I) positions
//! DAM against the 1-D numeric oracles; SR gives the workspace a complete
//! mean-estimation baseline for ablation studies.

use rand::Rng;

/// Stochastic Rounding mechanism on the domain `[−1, 1]`.
#[derive(Debug, Clone)]
pub struct StochasticRounding {
    eps: f64,
    coeff: f64,
}

impl StochasticRounding {
    /// Creates the mechanism.
    ///
    /// # Panics
    /// Panics unless `eps > 0`.
    pub fn new(eps: f64) -> Self {
        assert!(eps > 0.0 && eps.is_finite(), "privacy budget must be positive");
        let e = eps.exp();
        Self { eps, coeff: (e - 1.0) / (2.0 * (e + 1.0)) }
    }

    /// Privacy budget.
    #[inline]
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Randomizes `v ∈ [−1, 1]` into `±1`.
    pub fn perturb(&self, v: f64, rng: &mut (impl Rng + ?Sized)) -> f64 {
        assert!((-1.0..=1.0).contains(&v), "input must lie in [-1,1]");
        let p_plus = 0.5 + self.coeff * v;
        if rng.gen::<f64>() < p_plus {
            1.0
        } else {
            -1.0
        }
    }

    /// Unbiased mean estimate from a batch of `±1` reports.
    pub fn estimate_mean(&self, reports: &[f64]) -> f64 {
        assert!(!reports.is_empty(), "no reports");
        let e = self.eps.exp();
        let scale = (e + 1.0) / (e - 1.0);
        scale * reports.iter().sum::<f64>() / reports.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn mean_estimate_is_unbiased() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(30);
        let sr = StochasticRounding::new(1.0);
        for &v in &[-0.8, 0.0, 0.3, 1.0] {
            let reports: Vec<f64> = (0..200_000).map(|_| sr.perturb(v, &mut rng)).collect();
            let est = sr.estimate_mean(&reports);
            assert!((est - v).abs() < 0.02, "v {v}: est {est}");
        }
    }

    #[test]
    fn output_probability_ratio_respects_ldp() {
        // P[+1 | v=1] / P[+1 | v=-1] = e^eps exactly.
        let eps = 1.3;
        let sr = StochasticRounding::new(eps);
        let p1 = 0.5 + sr.coeff * 1.0;
        let p2 = 0.5 + -sr.coeff;
        assert!((p1 / p2 - eps.exp()).abs() < 1e-9);
    }

    #[test]
    fn reports_are_binary() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let sr = StochasticRounding::new(0.5);
        for _ in 0..100 {
            let r = sr.perturb(0.2, &mut rng);
            assert!(r == 1.0 || r == -1.0);
        }
    }
}
