//! # dam-fo — one-dimensional LDP frequency oracles
//!
//! The related-work section of the paper builds on a family of 1-D local
//! differential privacy primitives; the MDSW baseline and the trajectory
//! mechanisms are assembled from them. This crate implements each from
//! scratch:
//!
//! * [`grr`] — Generalized Random Response (the classic k-ary response and
//!   the basic Categorical Frequency Oracle of \[3\], \[7\]);
//! * [`oue`] — Optimized Unary Encoding (Wang et al. \[3\]);
//! * [`sw`] — the Square Wave mechanism of Li et al. \[6\], the 1-D ancestor
//!   of the paper's Disk Area Mechanism, with an exactly-integrated
//!   discrete transition matrix;
//! * [`em`] — operator-based Expectation-Maximisation with optional
//!   smoothing (the "EMS" of SW-EMS, also used by the paper's PostProcess
//!   step): EM is generic over the [`em::ChannelOp`] trait (`apply` +
//!   `accumulate_adjoint`, both threading an [`em::EmWorkspace`] of
//!   reusable scratch planes), with the dense [`em::Channel`] as reference
//!   implementation and structured operators (`dam-core`'s stencil
//!   `ConvChannel` and spectral `FftChannel`) as the fast paths;
//! * [`sr`] — Stochastic Rounding (Duchi et al. \[4\], mean estimation);
//! * [`pm`] — the Piecewise Mechanism (Wang et al. \[5\], mean estimation).

#![forbid(unsafe_code)]

pub mod alias;
pub mod em;
pub mod grr;
pub mod oue;
pub mod pm;
pub mod sr;
pub mod sw;

pub use em::{
    expectation_maximization, expectation_maximization_in, Channel, ChannelOp, EmHealth, EmParams,
    EmWorkspace,
};
pub use grr::Grr;
pub use oue::Oue;
pub use sw::SquareWave;
