//! The Square Wave mechanism (Li et al., SIGMOD 2020 — reference \[6\]).
//!
//! SW is the one-dimensional ancestor of the paper's Disk Area Mechanism:
//! a value `v ∈ [0,1]` is reported within the "wave" `[v − b, v + b]` with
//! high density `p` and anywhere else in `[−b, 1 + b]` with low density
//! `q`, where `b` maximises a mutual-information upper bound — exactly the
//! derivation §V-C adapts to two dimensions. MDSW applies SW per dimension.

use rand::Rng;

/// The continuous Square Wave mechanism on `[0, 1]`.
#[derive(Debug, Clone)]
pub struct SquareWave {
    eps: f64,
    b: f64,
    p: f64,
    q: f64,
}

impl SquareWave {
    /// Creates the mechanism with the variance/information-optimal wave
    /// half-width `b = (εe^ε − e^ε + 1) / (2e^ε(e^ε − 1 − ε))`.
    ///
    /// # Panics
    /// Panics unless `eps > 0`.
    pub fn new(eps: f64) -> Self {
        assert!(eps > 0.0 && eps.is_finite(), "privacy budget must be positive");
        let e = eps.exp();
        let b = (eps * e - e + 1.0) / (2.0 * e * (e - 1.0 - eps));
        Self::with_b(eps, b)
    }

    /// Creates the mechanism with an explicit half-width `b` (used by
    /// ablations and tests).
    pub fn with_b(eps: f64, b: f64) -> Self {
        assert!(eps > 0.0 && eps.is_finite(), "privacy budget must be positive");
        assert!(b > 0.0 && b.is_finite(), "wave half-width must be positive");
        let e = eps.exp();
        let q = 1.0 / (2.0 * b * e + 1.0);
        let p = e * q;
        Self { eps, b, p, q }
    }

    /// Privacy budget.
    #[inline]
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Wave half-width `b`.
    #[inline]
    pub fn b(&self) -> f64 {
        self.b
    }

    /// High reporting density.
    #[inline]
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Low reporting density.
    #[inline]
    pub fn q(&self) -> f64 {
        self.q
    }

    /// Randomizes `v ∈ [0,1]`, returning a report in `[−b, 1 + b]`.
    pub fn perturb(&self, v: f64, rng: &mut (impl Rng + ?Sized)) -> f64 {
        assert!((0.0..=1.0).contains(&v), "input must lie in [0,1]");
        let high_prob = 2.0 * self.b * self.p;
        if rng.gen::<f64>() < high_prob {
            v - self.b + rng.gen::<f64>() * 2.0 * self.b
        } else {
            // Low region has total length exactly 1: [−b, v−b) ∪ (v+b, 1+b].
            let t = rng.gen::<f64>();
            if t < v {
                -self.b + t
            } else {
                v + self.b + (t - v)
            }
        }
    }

    /// Exactly-integrated discrete transition matrix.
    ///
    /// The input domain `[0,1]` is split into `n` equal bins and the output
    /// domain `[−b̃, 1 + b̃]` (with `b̃ = ⌈b·n⌉/n`, so bins stay aligned)
    /// into `n + 2⌈b·n⌉` bins of the same width. Entry `(o, i)` is the
    /// probability that a value uniform in input bin `i` reports into
    /// output bin `o`; every column sums to 1 (up to floating point).
    pub fn transition_matrix(&self, n: usize) -> SwMatrix {
        assert!(n >= 1, "need at least one input bin");
        let w = 1.0 / n as f64;
        let pad = (self.b * n as f64).ceil() as usize;
        let n_out = n + 2 * pad;
        let mut data = vec![0.0f64; n_out * n];
        for i in 0..n {
            let (i0, i1) = (i as f64 * w, (i + 1) as f64 * w);
            for o in 0..n_out {
                let (o0, o1) = ((o as f64 - pad as f64) * w, (o as f64 + 1.0 - pad as f64) * w);
                // Clip the output bin to the mechanism's actual support.
                let c0 = o0.max(-self.b);
                let c1 = o1.min(1.0 + self.b);
                if c1 <= c0 {
                    continue;
                }
                let band = band_area(i0, i1, c0, c1, self.b);
                let full = (i1 - i0) * (c1 - c0);
                data[o * n + i] = (self.p * band + self.q * (full - band)) / w;
            }
        }
        SwMatrix { n_out, n_in: n, pad, data }
    }
}

/// A dense `n_out × n_in` column-stochastic transition matrix for the
/// discretized Square Wave mechanism.
#[derive(Debug, Clone)]
pub struct SwMatrix {
    /// Number of output bins.
    pub n_out: usize,
    /// Number of input bins.
    pub n_in: usize,
    /// Output bins added on each side of the input range.
    pub pad: usize,
    /// Row-major probabilities: `data[o * n_in + i] = P(out = o | in = i)`.
    pub data: Vec<f64>,
}

impl SwMatrix {
    /// `P(output bin o | input bin i)`.
    #[inline]
    pub fn at(&self, o: usize, i: usize) -> f64 {
        self.data[o * self.n_in + i]
    }

    /// Maps a continuous report in `[−b̃, 1+b̃]` to its output bin.
    pub fn output_bin(&self, report: f64) -> usize {
        let w = 1.0 / self.n_in as f64;
        let shifted = report + self.pad as f64 * w;
        let bin = (shifted / w).floor();
        (bin.max(0.0) as usize).min(self.n_out - 1)
    }
}

/// Area of `{(v, t) : v ∈ [i0,i1], t ∈ [o0,o1], |t − v| ≤ b}` — the exact
/// overlap between an input bin, an output bin and the wave band.
///
/// The integrand `f(t) = max(0, min(i1, t+b) − max(i0, t−b))` is piecewise
/// linear, so integrating trapezoidally between its breakpoints is exact.
fn band_area(i0: f64, i1: f64, o0: f64, o1: f64, b: f64) -> f64 {
    let f = |t: f64| -> f64 { ((i1.min(t + b)) - (i0.max(t - b))).max(0.0) };
    let mut pts = vec![o0, o1, i0 - b, i0 + b, i1 - b, i1 + b];
    pts.retain(|&t| t >= o0 && t <= o1);
    pts.sort_by(|a, c| a.total_cmp(c));
    pts.dedup();
    let mut area = 0.0;
    for k in 0..pts.len().saturating_sub(1) {
        let (t0, t1) = (pts[k], pts[k + 1]);
        area += 0.5 * (f(t0) + f(t1)) * (t1 - t0);
    }
    area
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn b_has_documented_limits() {
        // ε → 0: b → 1/2.
        let small = SquareWave::new(1e-4);
        assert!((small.b() - 0.5).abs() < 1e-3, "b {}", small.b());
        // ε → ∞: b → 0.
        let big = SquareWave::new(20.0);
        assert!(big.b() < 1e-6, "b {}", big.b());
    }

    #[test]
    fn densities_normalise() {
        for &eps in &[0.5, 1.0, 3.5, 8.0] {
            let sw = SquareWave::new(eps);
            // 2b·p + 1·q = 1 (high band width 2b, low region length 1).
            assert!((2.0 * sw.b() * sw.p() + sw.q() - 1.0).abs() < 1e-12);
            assert!((sw.p() / sw.q() - eps.exp()).abs() < 1e-9);
        }
    }

    #[test]
    fn reports_stay_in_output_domain() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(20);
        let sw = SquareWave::new(1.0);
        for k in 0..1000 {
            let v = k as f64 / 999.0;
            let r = sw.perturb(v, &mut rng);
            assert!(r >= -sw.b() - 1e-12 && r <= 1.0 + sw.b() + 1e-12, "report {r}");
        }
    }

    #[test]
    fn high_band_frequency_matches_p() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let sw = SquareWave::new(2.0);
        let v = 0.5;
        let n = 100_000;
        let mut inside = 0;
        for _ in 0..n {
            if (sw.perturb(v, &mut rng) - v).abs() <= sw.b() {
                inside += 1;
            }
        }
        let expect = 2.0 * sw.b() * sw.p();
        let got = inside as f64 / n as f64;
        assert!((got - expect).abs() < 0.01, "got {got} expect {expect}");
    }

    #[test]
    fn transition_matrix_is_column_stochastic() {
        for &eps in &[0.7, 3.5] {
            for &n in &[1usize, 4, 16] {
                let sw = SquareWave::new(eps);
                let m = sw.transition_matrix(n);
                for i in 0..n {
                    let col: f64 = (0..m.n_out).map(|o| m.at(o, i)).sum();
                    assert!((col - 1.0).abs() < 1e-9, "eps {eps} n {n} col {i}: {col}");
                }
            }
        }
    }

    #[test]
    fn matrix_entries_bounded_by_ldp_ratio() {
        let sw = SquareWave::new(1.4);
        let m = sw.transition_matrix(8);
        let e = 1.4f64.exp();
        for o in 0..m.n_out {
            for i1 in 0..8 {
                for i2 in 0..8 {
                    let (a, b) = (m.at(o, i1), m.at(o, i2));
                    if b > 1e-15 {
                        assert!(a / b <= e + 1e-9, "ratio {} at out {o}, inputs {i1},{i2}", a / b);
                    }
                }
            }
        }
    }

    #[test]
    fn matrix_agrees_with_sampling() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(22);
        let sw = SquareWave::new(1.0);
        let n = 5;
        let m = sw.transition_matrix(n);
        // Input bin 2: sample uniformly within the bin and bucket reports.
        let trials = 200_000;
        let mut counts = vec![0.0; m.n_out];
        for _ in 0..trials {
            let v = (2.0 + rng.gen::<f64>()) / n as f64;
            counts[m.output_bin(sw.perturb(v, &mut rng))] += 1.0;
        }
        for o in 0..m.n_out {
            let got = counts[o] / trials as f64;
            assert!(
                (got - m.at(o, 2)).abs() < 0.01,
                "bin {o}: sampled {got} vs matrix {}",
                m.at(o, 2)
            );
        }
    }

    #[test]
    fn band_area_simple_cases() {
        // Band wide enough to cover everything: area = full rectangle.
        assert!((band_area(0.0, 1.0, 0.0, 1.0, 10.0) - 1.0).abs() < 1e-12);
        // Zero-width band: area 0 (measure-zero diagonal).
        assert!(band_area(0.0, 1.0, 2.0, 3.0, 0.5) < 0.5);
        // Disjoint: |t - v| <= b unreachable.
        assert_eq!(band_area(0.0, 1.0, 5.0, 6.0, 0.5), 0.0);
    }
}
