//! Optimized Unary Encoding (Wang et al., USENIX Security 2017).
//!
//! Each user encodes their value as a one-hot bit vector and flips each bit
//! independently: the true bit is kept with probability `½`, every other
//! bit is set with probability `q = 1/(e^ε + 1)`. OUE has lower estimation
//! variance than GRR for large domains and is the workhorse FO inside the
//! LDPTrace reproduction.

use rand::Rng;

/// Optimized Unary Encoding over `k` categories at privacy level `ε`.
#[derive(Debug, Clone)]
pub struct Oue {
    k: usize,
    q: f64,
    eps: f64,
}

/// OUE keeps the true bit with probability ½ by construction.
const P_TRUE: f64 = 0.5;

impl Oue {
    /// Creates the mechanism.
    ///
    /// # Panics
    /// Panics unless `k ≥ 2` and `eps > 0`.
    pub fn new(k: usize, eps: f64) -> Self {
        assert!(k >= 2, "OUE needs at least two categories");
        assert!(eps > 0.0 && eps.is_finite(), "privacy budget must be positive");
        Self { k, q: 1.0 / (eps.exp() + 1.0), eps }
    }

    /// Number of categories.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Probability that a zero bit is flipped on.
    #[inline]
    pub fn q(&self) -> f64 {
        self.q
    }

    /// The privacy budget the mechanism was built with.
    #[inline]
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Randomizes one value, returning the *set bit indices* of the
    /// perturbed unary encoding (sparse representation: expected size is
    /// `½ + (k−1)q`, much smaller than `k` for large `ε`).
    pub fn perturb(&self, v: usize, rng: &mut (impl Rng + ?Sized)) -> Vec<usize> {
        assert!(v < self.k, "value out of domain");
        let mut set = Vec::new();
        for j in 0..self.k {
            let keep_prob = if j == v { P_TRUE } else { self.q };
            if rng.gen::<f64>() < keep_prob {
                set.push(j);
            }
        }
        set
    }

    /// Accumulates a sparse report into a per-category support counter.
    pub fn accumulate(&self, report: &[usize], support: &mut [f64]) {
        assert_eq!(support.len(), self.k, "support vector does not match k");
        for &j in report {
            support[j] += 1.0;
        }
    }

    /// Unbiased frequency estimation (`FO.E`) from per-category support
    /// counts out of `n` users.
    pub fn estimate(&self, support: &[f64], n: usize) -> Vec<f64> {
        assert_eq!(support.len(), self.k, "support vector does not match k");
        assert!(n > 0, "no reports to estimate from");
        support.iter().map(|&c| (c / n as f64 - self.q) / (P_TRUE - self.q)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn estimate_recovers_frequencies() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let k = 8;
        let o = Oue::new(k, 1.5);
        let n = 150_000;
        let mut support = vec![0.0; k];
        // True distribution: geometric-ish over 8 categories.
        let true_f: Vec<f64> = (0..k).map(|i| 0.5f64.powi(i as i32 + 1)).collect();
        let norm: f64 = true_f.iter().sum();
        let mut counts_true = vec![0usize; k];
        for u in 0..n {
            let t = (u as f64 + 0.5) / n as f64 * norm;
            let mut acc = 0.0;
            let mut v = k - 1;
            for (i, f) in true_f.iter().enumerate() {
                acc += f;
                if t <= acc {
                    v = i;
                    break;
                }
            }
            counts_true[v] += 1;
            let rep = o.perturb(v, &mut rng);
            o.accumulate(&rep, &mut support);
        }
        let est = o.estimate(&support, n);
        for i in 0..k {
            let t = counts_true[i] as f64 / n as f64;
            assert!((est[i] - t).abs() < 0.015, "cat {i}: est {} true {t}", est[i]);
        }
    }

    #[test]
    fn true_bit_kept_half_the_time() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let o = Oue::new(4, 2.0);
        let n = 40_000;
        let mut kept = 0;
        for _ in 0..n {
            if o.perturb(2, &mut rng).contains(&2) {
                kept += 1;
            }
        }
        let rate = kept as f64 / n as f64;
        assert!((rate - 0.5).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn q_matches_closed_form() {
        let o = Oue::new(16, 1.0);
        assert!((o.q() - 1.0 / (1.0f64.exp() + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn report_indices_in_range() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let o = Oue::new(6, 0.2);
        for v in 0..6 {
            for j in o.perturb(v, &mut rng) {
                assert!(j < 6);
            }
        }
    }
}
