//! The Piecewise Mechanism (Wang et al. \[5\]).
//!
//! Mean-estimation oracle on `[−1, 1]` with output domain `[−s, s]`,
//! `s = (e^{ε/2} + 1)/(e^{ε/2} − 1)`: a report lands in the favoured
//! subinterval `[l(v), r(v)]` around the true value with probability
//! `e^{ε/2}/(e^{ε/2} + 1)` and in the complement otherwise. Unbiased, with
//! lower variance than SR for larger ε.

use rand::Rng;

/// Piecewise Mechanism on the domain `[−1, 1]`.
#[derive(Debug, Clone)]
pub struct PiecewiseMechanism {
    eps: f64,
    s: f64,
    e_half: f64,
}

impl PiecewiseMechanism {
    /// Creates the mechanism.
    ///
    /// # Panics
    /// Panics unless `eps > 0`.
    pub fn new(eps: f64) -> Self {
        assert!(eps > 0.0 && eps.is_finite(), "privacy budget must be positive");
        let e_half = (eps / 2.0).exp();
        Self { eps, s: (e_half + 1.0) / (e_half - 1.0), e_half }
    }

    /// Privacy budget.
    #[inline]
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Output-domain half-width `s`.
    #[inline]
    pub fn s(&self) -> f64 {
        self.s
    }

    /// Left edge of the favoured subinterval for input `v`.
    fn l(&self, v: f64) -> f64 {
        (self.e_half * v - 1.0) / (self.e_half - 1.0)
    }

    /// Right edge of the favoured subinterval for input `v`.
    fn r(&self, v: f64) -> f64 {
        (self.e_half * v + 1.0) / (self.e_half - 1.0)
    }

    /// Randomizes `v ∈ [−1, 1]` into a report in `[−s, s]`.
    pub fn perturb(&self, v: f64, rng: &mut (impl Rng + ?Sized)) -> f64 {
        assert!((-1.0..=1.0).contains(&v), "input must lie in [-1,1]");
        let (l, r) = (self.l(v), self.r(v));
        let p_in = self.e_half / (self.e_half + 1.0);
        if rng.gen::<f64>() < p_in {
            l + rng.gen::<f64>() * (r - l)
        } else {
            // Complement [−s, l) ∪ (r, s], sampled proportionally to length.
            let left_len = l + self.s;
            let right_len = self.s - r;
            let t = rng.gen::<f64>() * (left_len + right_len);
            if t < left_len {
                -self.s + t
            } else {
                r + (t - left_len)
            }
        }
    }

    /// Mean estimate: PM reports are already unbiased, so this is the
    /// sample mean.
    pub fn estimate_mean(&self, reports: &[f64]) -> f64 {
        assert!(!reports.is_empty(), "no reports");
        reports.iter().sum::<f64>() / reports.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn mean_estimate_is_unbiased() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(40);
        let pm = PiecewiseMechanism::new(2.0);
        for &v in &[-0.9, -0.2, 0.0, 0.5, 1.0] {
            let reports: Vec<f64> = (0..200_000).map(|_| pm.perturb(v, &mut rng)).collect();
            let est = pm.estimate_mean(&reports);
            assert!((est - v).abs() < 0.03, "v {v}: est {est}");
        }
    }

    #[test]
    fn reports_stay_in_output_domain() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        let pm = PiecewiseMechanism::new(1.0);
        for k in 0..200 {
            let v = -1.0 + 2.0 * k as f64 / 199.0;
            let rep = pm.perturb(v, &mut rng);
            assert!(rep.abs() <= pm.s() + 1e-12, "report {rep} outside [-s, s]");
        }
    }

    #[test]
    fn favoured_interval_has_expected_mass() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let pm = PiecewiseMechanism::new(1.5);
        let v = 0.3;
        let (l, r) = (pm.l(v), pm.r(v));
        let n = 100_000;
        let mut inside = 0;
        for _ in 0..n {
            let rep = pm.perturb(v, &mut rng);
            if rep >= l && rep <= r {
                inside += 1;
            }
        }
        let expect = pm.e_half / (pm.e_half + 1.0);
        assert!((inside as f64 / n as f64 - expect).abs() < 0.01);
    }

    #[test]
    fn subinterval_width_is_constant() {
        let pm = PiecewiseMechanism::new(1.0);
        let w1 = pm.r(-1.0) - pm.l(-1.0);
        let w2 = pm.r(0.7) - pm.l(0.7);
        assert!((w1 - w2).abs() < 1e-12);
        // r(1) = s and l(-1) = -s: favoured band slides across the domain.
        assert!((pm.r(1.0) - pm.s()).abs() < 1e-12);
        assert!((pm.l(-1.0) + pm.s()).abs() < 1e-12);
    }
}
