//! Property-based tests of the 1-D frequency oracles.

use dam_fo::alias::AliasTable;
use dam_fo::em::{expectation_maximization, Channel, EmParams};
use dam_fo::{Grr, Oue, SquareWave};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn grr_probabilities_normalise(k in 2usize..200, eps in 0.1f64..10.0) {
        let g = Grr::new(k, eps);
        prop_assert!((g.p() + (k as f64 - 1.0) * g.q() - 1.0).abs() < 1e-9);
        prop_assert!((g.p() / g.q() - eps.exp()).abs() / eps.exp() < 1e-9);
    }

    #[test]
    fn sw_matrix_columns_sum_to_one(eps in 0.2f64..9.0, n in 1usize..24) {
        let sw = SquareWave::new(eps);
        let m = sw.transition_matrix(n);
        for i in 0..n {
            let col: f64 = (0..m.n_out).map(|o| m.at(o, i)).sum();
            prop_assert!((col - 1.0).abs() < 1e-8, "col {i} sums to {col}");
        }
    }

    #[test]
    fn sw_matrix_respects_ldp(eps in 0.2f64..6.0, n in 2usize..16) {
        let sw = SquareWave::new(eps);
        let m = sw.transition_matrix(n);
        let bound = eps.exp() * (1.0 + 1e-9);
        for o in 0..m.n_out {
            let col: Vec<f64> = (0..n).map(|i| m.at(o, i)).collect();
            let mx = col.iter().cloned().fold(0.0f64, f64::max);
            let mn = col.iter().cloned().fold(f64::INFINITY, f64::min);
            if mn > 1e-300 {
                prop_assert!(mx / mn <= bound, "ratio {} at output {o}", mx / mn);
            }
        }
    }

    #[test]
    fn sw_reports_in_range(eps in 0.2f64..9.0, v in 0.0f64..1.0, seed in 0u64..1000) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let sw = SquareWave::new(eps);
        let r = sw.perturb(v, &mut rng);
        prop_assert!(r >= -sw.b() - 1e-12 && r <= 1.0 + sw.b() + 1e-12);
    }

    #[test]
    fn oue_estimates_are_shift_scale_of_support(k in 2usize..64, eps in 0.2f64..6.0) {
        let o = Oue::new(k, eps);
        // estimate() is affine in support counts; check the fixed points:
        // support = n*q  -> estimate 0; support = n*0.5 -> estimate 1.
        let n = 1000usize;
        let zero = o.estimate(&vec![n as f64 * o.q(); k], n);
        let one = o.estimate(&vec![n as f64 * 0.5; k], n);
        for i in 0..k {
            prop_assert!(zero[i].abs() < 1e-9);
            prop_assert!((one[i] - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn alias_table_never_samples_zero_weight(
        weights in prop::collection::vec(0.0f64..10.0, 1..40),
        seed in 0u64..500,
    ) {
        use rand::SeedableRng;
        prop_assume!(weights.iter().sum::<f64>() > 1e-9);
        let t = AliasTable::new(&weights);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..64 {
            let i = t.sample(&mut rng);
            prop_assert!(weights[i] > 0.0, "sampled zero-weight outcome {i}");
        }
    }

    #[test]
    fn em_output_is_a_distribution(
        keep in 0.2f64..0.95,
        counts in prop::collection::vec(0.0f64..100.0, 5),
    ) {
        prop_assume!(counts.iter().sum::<f64>() > 0.0);
        let n = 5;
        let leak = (1.0 - keep) / (n - 1) as f64;
        let mut data = vec![leak; n * n];
        for i in 0..n {
            data[i * n + i] = keep;
        }
        let ch = Channel::new(n, n, data);
        let f = expectation_maximization(&ch, &counts, None, EmParams::default());
        prop_assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(f.iter().all(|&x| (0.0..=1.0 + 1e-12).contains(&x)));
    }

    #[test]
    fn em_likelihood_never_decreases(
        counts in prop::collection::vec(1.0f64..50.0, 4),
    ) {
        // Run EM step by step and track the observed-data log-likelihood.
        let n = 4;
        let keep = 0.6;
        let leak = (1.0 - keep) / 3.0;
        let mut data = vec![leak; n * n];
        for i in 0..n {
            data[i * n + i] = keep;
        }
        let ch = Channel::new(n, n, data);
        let ll = |f: &[f64]| -> f64 {
            let mut acc = 0.0;
            for o in 0..n {
                let mut p = 0.0;
                for i in 0..n {
                    p += ch.at(o, i) * f[i];
                }
                acc += counts[o] * p.max(1e-300).ln();
            }
            acc
        };
        let mut prev = ll(&[0.25; 4]);
        for iters in [1usize, 2, 4, 8, 16] {
            let f = expectation_maximization(
                &ch,
                &counts,
                None,
                EmParams { max_iters: iters, rel_tol: 0.0, gain_tol: 0.0 },
            );
            let cur = ll(&f);
            prop_assert!(cur + 1e-6 >= prev, "likelihood fell: {prev} -> {cur} at {iters}");
            prev = cur;
        }
    }
}
