//! Minimal command-line parsing shared by every figure binary (no external
//! dependency; flags documented in the crate docs).

use dam_core::EmBackend;
use dam_transport::W2Solver;
use std::path::PathBuf;

/// Parsed command-line options.
#[derive(Debug, Clone)]
pub struct CliArgs {
    /// Averaging repetitions per point.
    pub repeats: usize,
    /// Optional cap on users per dataset part.
    pub users: Option<usize>,
    /// True when `users` holds `--fast`'s default cap rather than an
    /// explicit `--users` value (the large-d binaries undo that cap: the
    /// sharded report pipeline makes full user counts affordable).
    pub fast_user_cap: bool,
    /// Experiment seed.
    pub seed: u64,
    /// CSV output directory.
    pub out: PathBuf,
    /// Smoke-test mode.
    pub fast: bool,
    /// Skip the Local-Privacy calibration for SEM-Geo-I.
    pub no_calib: bool,
    /// EM operator for SAM-family PostProcess (`--em-backend
    /// {auto,conv,dense,fft}`; `--dense-em` is kept as an alias for
    /// `--em-backend dense`). `Auto` picks stencil vs FFT from the
    /// measured crossover.
    pub em_backend: EmBackend,
    /// W₂ solver for every figure's error metric (`--w2-solver
    /// {auto,exact,sinkhorn,grid}`). `Auto` (the default) is the
    /// library's three-way size-based dispatch: exact LP for small
    /// supports, the grid-separable solver for large same-grid
    /// histograms, dense Sinkhorn for sparse supports on fine grids.
    pub w2_solver: W2Solver,
    /// Worker threads for the job runner and the sharded report pipeline
    /// (default: available parallelism). Results are bit-identical for
    /// any value — this is a wall-clock knob, not a semantics knob.
    pub threads: Option<usize>,
    /// Stream length in epochs for the continual-observation binaries
    /// (`--epochs N`; each binary picks its own default).
    pub epochs: Option<usize>,
    /// Sliding-window length in epochs for the continual-observation
    /// binaries (`--window W`).
    pub window: Option<usize>,
    /// Fault-injection plan spec for chaos runs (`--inject
    /// "seed=7,corrupt=0.01,drop=0.1,..."`). Kept as the raw spec string
    /// here; the stream binaries parse it with `FaultPlan::parse` so this
    /// crate's shared CLI stays decoupled from `dam-fault`'s types.
    pub inject: Option<String>,
    /// Where to write the run's dam-obs metrics as a JSON document
    /// (`--metrics-out PATH`; sections keyed by pipeline label — see
    /// [`crate::obs::write_metrics`]). `None` skips the export.
    pub metrics_out: Option<PathBuf>,
}

impl Default for CliArgs {
    fn default() -> Self {
        Self {
            repeats: 3,
            users: None,
            fast_user_cap: false,
            seed: 42,
            out: PathBuf::from("results"),
            fast: false,
            no_calib: false,
            em_backend: EmBackend::Auto,
            w2_solver: W2Solver::Auto,
            threads: None,
            epochs: None,
            window: None,
            inject: None,
            metrics_out: None,
        }
    }
}

impl CliArgs {
    /// Parses `std::env::args()`; panics with a usage message on bad input.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses an explicit iterator (testable).
    pub fn parse_from(args: impl Iterator<Item = String>) -> Self {
        let mut out = Self::default();
        let mut it = args.peekable();
        while let Some(arg) = it.next() {
            let mut value = |name: &str| -> String {
                it.next().unwrap_or_else(|| panic!("missing value for {name}"))
            };
            match arg.as_str() {
                "--repeats" => out.repeats = value("--repeats").parse().expect("bad --repeats"),
                "--users" => out.users = Some(value("--users").parse().expect("bad --users")),
                "--seed" => out.seed = value("--seed").parse().expect("bad --seed"),
                "--out" => out.out = PathBuf::from(value("--out")),
                "--fast" => out.fast = true,
                "--no-calib" => out.no_calib = true,
                "--dense-em" => out.em_backend = EmBackend::Dense,
                "--em-backend" => {
                    let name = value("--em-backend");
                    out.em_backend = EmBackend::from_label(&name).unwrap_or_else(|| {
                        let known: Vec<_> = EmBackend::ALL.iter().map(|b| b.label()).collect();
                        panic!("bad --em-backend {name}; known: {}", known.join(" "))
                    });
                }
                "--w2-solver" => {
                    let name = value("--w2-solver");
                    out.w2_solver = W2Solver::from_label(&name).unwrap_or_else(|| {
                        let known: Vec<_> = W2Solver::ALL.iter().map(|s| s.label()).collect();
                        panic!("bad --w2-solver {name}; known: {}", known.join(" "))
                    });
                }
                "--threads" => {
                    let n: usize = value("--threads").parse().expect("bad --threads");
                    assert!(n >= 1, "--threads must be at least 1");
                    out.threads = Some(n);
                }
                "--epochs" => {
                    let n: usize = value("--epochs").parse().expect("bad --epochs");
                    assert!(n >= 1, "--epochs must be at least 1");
                    out.epochs = Some(n);
                }
                "--window" => {
                    let n: usize = value("--window").parse().expect("bad --window");
                    assert!(n >= 1, "--window must be at least 1");
                    out.window = Some(n);
                }
                "--inject" => out.inject = Some(value("--inject")),
                "--metrics-out" => out.metrics_out = Some(PathBuf::from(value("--metrics-out"))),
                other => panic!(
                    "unknown flag {other}; known: --repeats --users --seed --out --fast \
                     --no-calib --em-backend --dense-em --w2-solver --threads --epochs --window \
                     --inject --metrics-out"
                ),
            }
        }
        if out.fast {
            out.repeats = 1;
            if out.users.is_none() {
                out.users = Some(50_000);
                out.fast_user_cap = true;
            }
        }
        out
    }

    /// Lifts `--fast`'s default user cap (an explicit `--users` still
    /// wins). The fig9 large-d binaries call this: with the sharded
    /// report pipeline their full user counts are affordable by default.
    pub fn with_full_users(mut self) -> Self {
        if self.fast_user_cap {
            self.users = None;
            self.fast_user_cap = false;
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> CliArgs {
        CliArgs::parse_from(s.split_whitespace().map(String::from))
    }

    #[test]
    fn defaults() {
        let a = parse("");
        assert_eq!(a.repeats, 3);
        assert_eq!(a.seed, 42);
        assert!(a.users.is_none());
        assert!(!a.fast);
        assert_eq!(a.em_backend, EmBackend::Auto);
        assert!(a.threads.is_none());
    }

    #[test]
    fn em_backend_parses_every_value() {
        assert_eq!(parse("--em-backend auto").em_backend, EmBackend::Auto);
        assert_eq!(parse("--em-backend conv").em_backend, EmBackend::Convolution);
        assert_eq!(parse("--em-backend dense").em_backend, EmBackend::Dense);
        assert_eq!(parse("--em-backend fft").em_backend, EmBackend::Fft);
    }

    #[test]
    fn dense_em_is_an_alias_for_the_dense_backend() {
        assert_eq!(parse("--dense-em").em_backend, EmBackend::Dense);
    }

    #[test]
    fn w2_solver_parses_every_value() {
        assert_eq!(parse("").w2_solver, W2Solver::Auto);
        assert_eq!(parse("--w2-solver auto").w2_solver, W2Solver::Auto);
        assert_eq!(parse("--w2-solver exact").w2_solver, W2Solver::Exact);
        assert_eq!(parse("--w2-solver sinkhorn").w2_solver, W2Solver::Dense);
        assert_eq!(parse("--w2-solver grid").w2_solver, W2Solver::Grid);
    }

    #[test]
    #[should_panic(expected = "bad --w2-solver")]
    fn rejects_unknown_w2_solver() {
        parse("--w2-solver lp");
    }

    #[test]
    #[should_panic(expected = "bad --em-backend")]
    fn rejects_unknown_backend() {
        parse("--em-backend spectral");
    }

    #[test]
    fn fast_mode_caps_work() {
        let a = parse("--fast");
        assert_eq!(a.repeats, 1);
        assert_eq!(a.users, Some(50_000));
        assert!(a.fast_user_cap);
    }

    #[test]
    fn explicit_values() {
        let a = parse(
            "--repeats 7 --users 1000 --seed 9 --out /tmp/x --no-calib --dense-em --threads 2",
        );
        assert_eq!(a.repeats, 7);
        assert_eq!(a.users, Some(1000));
        assert_eq!(a.seed, 9);
        assert_eq!(a.out, PathBuf::from("/tmp/x"));
        assert!(a.no_calib);
        assert_eq!(a.em_backend, EmBackend::Dense);
        assert_eq!(a.threads, Some(2));
    }

    #[test]
    fn full_users_lifts_only_the_fast_cap() {
        // --fast's default cap is lifted …
        let a = parse("--fast").with_full_users();
        assert_eq!(a.users, None);
        assert!(!a.fast_user_cap);
        assert_eq!(a.repeats, 1, "the repeat cap stays");
        // … but an explicit --users always wins.
        let b = parse("--fast --users 1234").with_full_users();
        assert_eq!(b.users, Some(1234));
    }

    #[test]
    fn stream_flags_parse() {
        let a = parse("--epochs 32 --window 5");
        assert_eq!(a.epochs, Some(32));
        assert_eq!(a.window, Some(5));
        assert!(parse("").epochs.is_none() && parse("").window.is_none());
    }

    #[test]
    #[should_panic(expected = "--window must be at least 1")]
    fn rejects_zero_window() {
        parse("--window 0");
    }

    #[test]
    fn metrics_out_parses_to_a_path() {
        assert!(parse("").metrics_out.is_none());
        let a = parse("--metrics-out /tmp/m.json");
        assert_eq!(a.metrics_out, Some(PathBuf::from("/tmp/m.json")));
    }

    #[test]
    fn inject_keeps_the_raw_spec_string() {
        assert!(parse("").inject.is_none());
        let a = parse("--inject seed=7,corrupt=0.01,drop=0.1");
        assert_eq!(a.inject.as_deref(), Some("seed=7,corrupt=0.01,drop=0.1"));
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn rejects_unknown() {
        parse("--bogus");
    }

    #[test]
    #[should_panic(expected = "--threads must be at least 1")]
    fn rejects_zero_threads() {
        parse("--threads 0");
    }
}
