//! Minimal command-line parsing shared by every figure binary (no external
//! dependency; flags documented in the crate docs).

use std::path::PathBuf;

/// Parsed command-line options.
#[derive(Debug, Clone)]
pub struct CliArgs {
    /// Averaging repetitions per point.
    pub repeats: usize,
    /// Optional cap on users per dataset part.
    pub users: Option<usize>,
    /// Experiment seed.
    pub seed: u64,
    /// CSV output directory.
    pub out: PathBuf,
    /// Smoke-test mode.
    pub fast: bool,
    /// Skip the Local-Privacy calibration for SEM-Geo-I.
    pub no_calib: bool,
    /// Run EM against the dense reference channel instead of the
    /// convolution operator (A/B comparison; much slower at large d).
    pub dense_em: bool,
}

impl Default for CliArgs {
    fn default() -> Self {
        Self {
            repeats: 3,
            users: None,
            seed: 42,
            out: PathBuf::from("results"),
            fast: false,
            no_calib: false,
            dense_em: false,
        }
    }
}

impl CliArgs {
    /// Parses `std::env::args()`; panics with a usage message on bad input.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses an explicit iterator (testable).
    pub fn parse_from(args: impl Iterator<Item = String>) -> Self {
        let mut out = Self::default();
        let mut it = args.peekable();
        while let Some(arg) = it.next() {
            let mut value = |name: &str| -> String {
                it.next().unwrap_or_else(|| panic!("missing value for {name}"))
            };
            match arg.as_str() {
                "--repeats" => out.repeats = value("--repeats").parse().expect("bad --repeats"),
                "--users" => out.users = Some(value("--users").parse().expect("bad --users")),
                "--seed" => out.seed = value("--seed").parse().expect("bad --seed"),
                "--out" => out.out = PathBuf::from(value("--out")),
                "--fast" => out.fast = true,
                "--no-calib" => out.no_calib = true,
                "--dense-em" => out.dense_em = true,
                other => panic!(
                    "unknown flag {other}; known: --repeats --users --seed --out --fast \
                     --no-calib --dense-em"
                ),
            }
        }
        if out.fast {
            out.repeats = 1;
            out.users.get_or_insert(50_000);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> CliArgs {
        CliArgs::parse_from(s.split_whitespace().map(String::from))
    }

    #[test]
    fn defaults() {
        let a = parse("");
        assert_eq!(a.repeats, 3);
        assert_eq!(a.seed, 42);
        assert!(a.users.is_none());
        assert!(!a.fast);
        assert!(!a.dense_em);
    }

    #[test]
    fn fast_mode_caps_work() {
        let a = parse("--fast");
        assert_eq!(a.repeats, 1);
        assert_eq!(a.users, Some(50_000));
    }

    #[test]
    fn explicit_values() {
        let a = parse("--repeats 7 --users 1000 --seed 9 --out /tmp/x --no-calib --dense-em");
        assert_eq!(a.repeats, 7);
        assert_eq!(a.users, Some(1000));
        assert_eq!(a.seed, 9);
        assert_eq!(a.out, PathBuf::from("/tmp/x"));
        assert!(a.no_calib);
        assert!(a.dense_em);
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn rejects_unknown() {
        parse("--bogus");
    }
}
