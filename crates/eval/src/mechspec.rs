//! Mechanism factory with Local-Privacy calibration caching.

use crate::context::EvalContext;
use dam_baselines::{CfoEstimator, CfoFlavor, Mdsw, SemGeoI};
use dam_core::{DamConfig, DamEstimator, SamVariant, SpatialEstimator};
use dam_geo::rng::derived;
use dam_privacy::lp::{calibrate_sem_epsilon, lp_dam};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::OnceLock;

/// A mechanism selector, resolved to a concrete estimator per `(ε, d)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MechSpec {
    /// The paper's DAM (shrunken kernel, optimal b̌).
    Dam,
    /// DAM with an explicit radius multiplier on b̌ (Figure 8).
    DamWithBFactor(f64),
    /// DAM without shrinkage.
    DamNs,
    /// DAM with exact intersection areas (ablation).
    DamExact,
    /// HUEM.
    Huem,
    /// Multi-dimensional Square Wave.
    Mdsw,
    /// SEM-Geo-I with LP-calibrated ε′ (the paper's protocol).
    Sem,
    /// Categorical frequency oracle (GRR flavour).
    CfoGrr,
}

impl MechSpec {
    /// The five mechanisms of Figures 9(a–e)/(k–o), in legend order.
    pub const FIGURE9_ALL: [MechSpec; 5] =
        [MechSpec::Sem, MechSpec::Mdsw, MechSpec::Huem, MechSpec::Dam, MechSpec::DamNs];

    /// The two mechanisms of Figures 9(f–j)/(p–t).
    pub const FIGURE9_LARGE: [MechSpec; 2] = [MechSpec::Sem, MechSpec::Dam];

    /// Display label (matches the paper's legends).
    pub fn label(&self) -> String {
        match self {
            MechSpec::Dam => "DAM".into(),
            MechSpec::DamWithBFactor(f) => format!("DAM(b={f:.2}b̌)"),
            MechSpec::DamNs => "DAM-NS".into(),
            MechSpec::DamExact => "DAM-X".into(),
            MechSpec::Huem => "HUEM".into(),
            MechSpec::Mdsw => "MDSW".into(),
            MechSpec::Sem => "SEM-Geo-I".into(),
            MechSpec::CfoGrr => "CFO-GRR".into(),
        }
    }

    /// Builds the estimator for a privacy budget and grid resolution.
    pub fn build(
        &self,
        eps: f64,
        d: u32,
        ctx: &EvalContext,
    ) -> Box<dyn SpatialEstimator + Send + Sync> {
        // Every SAM-family estimator inherits the context's EM backend
        // (convolution by default, dense only under `--dense-em`) and the
        // report-pipeline thread count.
        let sam = |config: DamConfig| {
            Box::new(DamEstimator::new(DamConfig {
                backend: ctx.em_backend,
                threads: ctx.threads,
                ..config
            }))
        };
        match self {
            MechSpec::Dam => sam(DamConfig::dam(eps)),
            MechSpec::DamWithBFactor(f) => {
                let b_opt = dam_core::radius::optimal_b_cells(eps, d);
                let b = ((b_opt as f64 * f).round() as u32).max(1);
                sam(DamConfig { b_hat: Some(b), ..DamConfig::dam(eps) })
            }
            MechSpec::DamNs => sam(DamConfig::dam_ns(eps)),
            MechSpec::DamExact => {
                sam(DamConfig { variant: SamVariant::DamExact, ..DamConfig::dam(eps) })
            }
            MechSpec::Huem => sam(DamConfig::huem(eps)),
            MechSpec::Mdsw => Box::new(Mdsw::new(eps).with_threads(ctx.threads)),
            MechSpec::Sem => {
                Box::new(SemGeoI::new(sem_epsilon(eps, d, ctx)).with_threads(ctx.threads))
            }
            MechSpec::CfoGrr => {
                Box::new(CfoEstimator::new(eps, CfoFlavor::Grr).with_threads(ctx.threads))
            }
        }
    }
}

/// Cache of calibrated SEM budgets keyed by `(eps·1000, d, samples)`.
fn calib_cache() -> &'static Mutex<HashMap<(u64, u32, usize), f64>> {
    static CACHE: OnceLock<Mutex<HashMap<(u64, u32, usize), f64>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Resolves the SEM-Geo-I budget ε′ for an LDP budget ε on a `d × d`
/// grid: equal Local Privacy per §VII-B, cached per configuration.
/// With `ctx.no_calib` the raw ε is used directly.
pub fn sem_epsilon(eps: f64, d: u32, ctx: &EvalContext) -> f64 {
    if ctx.no_calib || d == 1 {
        return eps;
    }
    let key = ((eps * 1000.0).round() as u64, d, ctx.lp_samples);
    if let Some(&v) = calib_cache().lock().get(&key) {
        return v;
    }
    let b = dam_core::radius::optimal_b_cells(eps, d);
    let kernel =
        dam_core::kernel::DiscreteKernel::dam(eps, d, b, dam_core::grid::KernelKind::Shrunken);
    let target = lp_dam(&kernel);
    let mut rng = derived(ctx.seed, 0xCA11_B000 + d as u64);
    let eps_sem = calibrate_sem_epsilon(target, d, ctx.lp_samples, &mut rng);
    calib_cache().lock().insert(key, eps_sem);
    eps_sem
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cli::CliArgs;

    fn ctx(no_calib: bool) -> EvalContext {
        EvalContext::from_args(&CliArgs { no_calib, ..CliArgs::default() })
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(MechSpec::Dam.label(), "DAM");
        assert_eq!(MechSpec::Sem.label(), "SEM-Geo-I");
        assert_eq!(MechSpec::FIGURE9_ALL.len(), 5);
    }

    #[test]
    fn no_calib_passes_eps_through() {
        assert_eq!(sem_epsilon(2.5, 5, &ctx(true)), 2.5);
    }

    #[test]
    fn calibration_is_cached_and_positive() {
        let c = ctx(false);
        let a = sem_epsilon(3.5, 3, &c);
        let b = sem_epsilon(3.5, 3, &c);
        assert_eq!(a, b, "second lookup must come from the cache");
        assert!(a > 0.0 && a.is_finite());
    }

    #[test]
    fn builders_produce_named_mechanisms() {
        let c = ctx(true);
        for spec in [MechSpec::Dam, MechSpec::DamNs, MechSpec::Huem, MechSpec::Mdsw] {
            let m = spec.build(1.0, 4, &c);
            assert!(!m.name().is_empty());
        }
    }

    #[test]
    fn b_factor_scales_radius() {
        let c = ctx(true);
        // b̌(3.5, 15) = 3; factor 1.67 → 5.
        let m = MechSpec::DamWithBFactor(1.67).build(3.5, 15, &c);
        assert_eq!(m.name(), "DAM");
        let b_opt = dam_core::radius::optimal_b_cells(3.5, 15);
        assert_eq!(((b_opt as f64) * 1.67).round() as u32, 5);
    }
}
