//! Parallel experiment execution.
//!
//! Every figure is a grid of independent `(dataset, mechanism, d, ε)`
//! points; the runner spreads them over worker threads (crossbeam scoped
//! threads pulling indices from an atomic counter) and collects mean-W₂
//! results in input order.

use crate::context::EvalContext;
use crate::mechspec::MechSpec;
use dam_data::DatasetKind;
use dam_geo::rng::splitmix64;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One evaluation point.
#[derive(Debug, Clone)]
pub struct Job {
    /// Dataset to run on.
    pub dataset: DatasetKind,
    /// Mechanism selector.
    pub mech: MechSpec,
    /// Grid resolution.
    pub d: u32,
    /// Privacy budget ε.
    pub eps: f64,
}

/// A finished evaluation point.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The job that produced this result.
    pub job: Job,
    /// Mean W₂ (cell units) over parts and repeats.
    pub w2: f64,
    /// Wall-clock seconds spent.
    pub secs: f64,
}

/// Runs all jobs, using up to `threads` workers (defaults to the available
/// parallelism). Results come back in job order.
pub fn run_jobs(ctx: &EvalContext, jobs: &[Job], threads: Option<usize>) -> Vec<JobResult> {
    let n_threads = threads
        .unwrap_or_else(|| std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4))
        .clamp(1, jobs.len().max(1));
    // Pre-warm the dataset cache serially to avoid duplicated generation.
    for job in jobs {
        ctx.dataset(job.dataset);
    }
    let next = AtomicUsize::new(0);
    let results: Vec<parking_lot::Mutex<Option<JobResult>>> =
        jobs.iter().map(|_| parking_lot::Mutex::new(None)).collect();

    crossbeam::scope(|scope| {
        for _ in 0..n_threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let job = &jobs[i];
                let start = std::time::Instant::now();
                let mech = job.mech.build(job.eps, job.d, ctx);
                let stream = splitmix64(i as u64 + 0x0B5E_55ED);
                let w2 = ctx.dataset_w2(job.dataset, mech.as_ref(), job.d, stream);
                *results[i].lock() =
                    Some(JobResult { job: job.clone(), w2, secs: start.elapsed().as_secs_f64() });
                eprintln!(
                    "  [{}/{}] {:<12} {:<10} d={:<3} eps={:<4} -> W2 = {:.4}  ({:.1}s)",
                    i + 1,
                    jobs.len(),
                    job.dataset.label(),
                    job.mech.label(),
                    job.d,
                    job.eps,
                    w2,
                    start.elapsed().as_secs_f64()
                );
            });
        }
    })
    .expect("worker thread panicked");

    results.into_iter().map(|m| m.into_inner().expect("job not completed")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cli::CliArgs;

    #[test]
    fn runs_small_grid_in_order() {
        let ctx = EvalContext::from_args(&CliArgs {
            repeats: 1,
            users: Some(2000),
            no_calib: true,
            ..CliArgs::default()
        });
        let jobs = vec![
            Job { dataset: DatasetKind::SZipf, mech: MechSpec::Dam, d: 3, eps: 2.0 },
            Job { dataset: DatasetKind::SZipf, mech: MechSpec::Mdsw, d: 3, eps: 2.0 },
        ];
        let results = run_jobs(&ctx, &jobs, Some(2));
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].job.mech, MechSpec::Dam);
        assert_eq!(results[1].job.mech, MechSpec::Mdsw);
        assert!(results.iter().all(|r| r.w2.is_finite() && r.w2 >= 0.0));
    }
}
