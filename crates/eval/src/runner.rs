//! Parallel experiment execution.
//!
//! Every figure is a grid of independent `(dataset, mechanism, d, ε)`
//! points; the runner spreads them over worker threads (crossbeam scoped
//! threads pulling indices from an atomic counter) and collects mean-W₂
//! results in input order. Each job's RNG stream is keyed on the job's
//! *content*, never its position, so editing a figure's grid cannot
//! silently change any other point's randomness.

use crate::context::EvalContext;
use crate::mechspec::MechSpec;
use dam_data::DatasetKind;
use dam_geo::rng::splitmix64;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One evaluation point.
#[derive(Debug, Clone)]
pub struct Job {
    /// Dataset to run on.
    pub dataset: DatasetKind,
    /// Mechanism selector.
    pub mech: MechSpec,
    /// Grid resolution.
    pub d: u32,
    /// Privacy budget ε.
    pub eps: f64,
}

/// FNV-1a over one field, with a terminator so adjacent fields cannot
/// alias (`"ab" + "c"` vs `"a" + "bc"`).
fn fnv1a_field(mut h: u64, bytes: &[u8]) -> u64 {
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    (h ^ 0xFF).wrapping_mul(FNV_PRIME)
}

/// Deterministic RNG stream key for a task identified by a single label
/// (the one-field analogue of [`job_stream`], e.g. one stream per
/// mechanism in a streaming figure): FNV-1a over the label mixed with
/// the experiment seed. Content-keyed — adding a task never perturbs the
/// others' randomness.
pub fn label_stream(seed: u64, label: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    splitmix64(seed ^ splitmix64(fnv1a_field(FNV_OFFSET, label.as_bytes())))
}

/// Deterministic RNG stream key derived from a job's content — dataset
/// label, mechanism label, grid resolution and the exact bits of ε —
/// never from the job's position in the job vector. Inserting, removing
/// or reordering grid points therefore leaves every other job's
/// randomness (and W₂) unchanged. Repeats are separated downstream by
/// [`EvalContext::part_w2`], which mixes the repeat index into this
/// stream.
pub fn job_stream(job: &Job) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    let mut h = FNV_OFFSET;
    h = fnv1a_field(h, job.dataset.label().as_bytes());
    h = fnv1a_field(h, job.mech.label().as_bytes());
    h = fnv1a_field(h, &job.d.to_le_bytes());
    h = fnv1a_field(h, &job.eps.to_bits().to_le_bytes());
    splitmix64(h)
}

/// A finished evaluation point.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The job that produced this result.
    pub job: Job,
    /// Mean W₂ (cell units) over parts and repeats.
    pub w2: f64,
    /// Wall-clock seconds spent.
    pub secs: f64,
}

/// Runs all jobs, using up to `threads` workers (defaults to the available
/// parallelism). Results come back in job order and are bit-identical for
/// any thread count.
pub fn run_jobs(ctx: &EvalContext, jobs: &[Job], threads: Option<usize>) -> Vec<JobResult> {
    let budget = threads
        .unwrap_or_else(|| std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4))
        .max(1);
    let n_threads = budget.clamp(1, jobs.len().max(1));
    // Split the thread budget across the two parallel layers: with N job
    // workers, each mechanism's sharded report pipeline gets N/budget
    // threads, so the effective concurrency stays ≈ the requested cap
    // instead of multiplying to N². A single-job list therefore spends
    // the whole budget inside the report pipeline.
    let ctx = ctx.with_threads(Some((budget / n_threads).max(1)));
    let ctx = &ctx;
    // Pre-warm the dataset cache serially to avoid duplicated generation.
    for job in jobs {
        ctx.dataset(job.dataset);
    }
    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let results: Vec<parking_lot::Mutex<Option<JobResult>>> =
        jobs.iter().map(|_| parking_lot::Mutex::new(None)).collect();
    // One lock serializes the multi-field progress lines so they cannot
    // interleave when several workers finish at once.
    let progress = parking_lot::Mutex::new(());

    crossbeam::scope(|scope| {
        for _ in 0..n_threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let job = &jobs[i];
                let watch = dam_obs::Stopwatch::start(crate::obs::wall());
                let mech = job.mech.build(job.eps, job.d, ctx);
                let w2 = ctx.dataset_w2(job.dataset, mech.as_ref(), job.d, job_stream(job));
                *results[i].lock() =
                    Some(JobResult { job: job.clone(), w2, secs: watch.elapsed_secs() });
                let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                let _guard = progress.lock();
                eprintln!(
                    "  [{}/{}] {:<12} {:<10} d={:<3} eps={:<4} -> W2 = {:.4}  ({:.1}s)",
                    finished,
                    jobs.len(),
                    job.dataset.label(),
                    job.mech.label(),
                    job.d,
                    job.eps,
                    w2,
                    watch.elapsed_secs()
                );
            });
        }
    })
    .expect("worker thread panicked");

    results.into_iter().map(|m| m.into_inner().expect("job not completed")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cli::CliArgs;

    fn tiny_ctx() -> EvalContext {
        EvalContext::from_args(&CliArgs {
            repeats: 1,
            users: Some(2000),
            no_calib: true,
            ..CliArgs::default()
        })
    }

    #[test]
    fn runs_small_grid_in_order() {
        let ctx = tiny_ctx();
        let jobs = vec![
            Job { dataset: DatasetKind::SZipf, mech: MechSpec::Dam, d: 3, eps: 2.0 },
            Job { dataset: DatasetKind::SZipf, mech: MechSpec::Mdsw, d: 3, eps: 2.0 },
        ];
        let results = run_jobs(&ctx, &jobs, Some(2));
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].job.mech, MechSpec::Dam);
        assert_eq!(results[1].job.mech, MechSpec::Mdsw);
        assert!(results.iter().all(|r| r.w2.is_finite() && r.w2 >= 0.0));
    }

    #[test]
    fn job_stream_depends_on_every_content_field() {
        let base = Job { dataset: DatasetKind::SZipf, mech: MechSpec::Dam, d: 3, eps: 2.0 };
        let s = job_stream(&base);
        assert_eq!(s, job_stream(&base.clone()), "stream must be deterministic");
        assert_ne!(s, job_stream(&Job { dataset: DatasetKind::Normal, ..base.clone() }));
        assert_ne!(s, job_stream(&Job { mech: MechSpec::Huem, ..base.clone() }));
        assert_ne!(s, job_stream(&Job { d: 4, ..base.clone() }));
        assert_ne!(s, job_stream(&Job { eps: 2.5, ..base.clone() }));
    }

    #[test]
    fn inserting_an_unrelated_job_leaves_other_results_bit_identical() {
        // Regression: streams used to be keyed on the job's *index*, so
        // editing a figure's grid changed every other point's randomness.
        let ctx = tiny_ctx();
        let probe = Job { dataset: DatasetKind::SZipf, mech: MechSpec::Dam, d: 3, eps: 2.0 };
        let alone = run_jobs(&ctx, std::slice::from_ref(&probe), Some(1));
        let unrelated = Job { dataset: DatasetKind::SZipf, mech: MechSpec::CfoGrr, d: 2, eps: 1.0 };
        let shifted = run_jobs(&ctx, &[unrelated, probe], Some(2));
        assert_eq!(
            alone[0].w2.to_bits(),
            shifted[1].w2.to_bits(),
            "inserting a job before the probe must not change the probe's W2"
        );
    }
}
