//! Result tables: aligned stdout rendering plus CSV persistence.

use std::fmt::Write as _;
use std::path::Path;

/// A simple column-oriented result table.
#[derive(Debug, Clone)]
pub struct Report {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Report {
    /// Creates an empty report with a title and column names.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the report has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells.iter().zip(widths).map(|(c, w)| format!("{c:<w$}")).collect::<Vec<_>>().join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let _ = writeln!(out, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Writes the table as CSV to `dir/name.csv` (creating `dir`).
    pub fn write_csv(&self, dir: &Path, name: &str) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut s = String::new();
        let esc = |c: &str| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let _ = writeln!(s, "{}", self.header.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        for row in &self.rows {
            let _ = writeln!(s, "{}", row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        }
        std::fs::write(&path, s)?;
        Ok(path)
    }
}

/// Formats a float with 4 decimals for table cells.
pub fn fmt4(x: f64) -> String {
    format!("{x:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut r = Report::new("demo", &["name", "value"]);
        r.push_row(vec!["alpha".into(), "1".into()]);
        r.push_row(vec!["b".into(), "22.5".into()]);
        let text = r.render();
        assert!(text.contains("== demo =="));
        assert!(text.contains("alpha"));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn writes_csv_with_escaping() {
        let dir = std::env::temp_dir().join("dam_eval_report_test");
        let mut r = Report::new("csv", &["a", "b"]);
        r.push_row(vec!["x,y".into(), "plain".into()]);
        let path = r.write_csv(&dir, "t").unwrap();
        let content = std::fs::read_to_string(path).unwrap();
        assert!(content.contains("\"x,y\",plain"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut r = Report::new("bad", &["only"]);
        r.push_row(vec!["a".into(), "b".into()]);
    }
}
