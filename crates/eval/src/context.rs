//! Shared evaluation context: dataset access, truth histograms and the W₂
//! measurement protocol of §VII-B.

use crate::cli::CliArgs;
use dam_core::{EmBackend, SpatialEstimator};
use dam_data::{load, DatasetKind, DatasetPart, SpatialDataset};
use dam_geo::rng::derived;
use dam_geo::{Grid2D, Histogram2D};
use dam_transport::metrics::{w2, W2Solver, WassersteinMethod};
use dam_transport::SinkhornParams;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Evaluation configuration plus dataset cache.
#[derive(Clone)]
pub struct EvalContext {
    /// Experiment seed (datasets and mechanism randomness derive from it).
    pub seed: u64,
    /// Averaging repetitions.
    pub repeats: usize,
    /// Optional cap on users per dataset part.
    pub user_cap: Option<usize>,
    /// Largest support solved with the exact LP; larger runs an
    /// entropic solver — the paper's own size-based switch.
    pub exact_limit: usize,
    /// Sinkhorn settings for the large-grid regime (shared by the dense
    /// and grid-separable solvers).
    pub sinkhorn: SinkhornParams,
    /// W₂ solver selection (`--w2-solver`; `Auto` dispatches by size).
    pub w2_solver: W2Solver,
    /// Monte-Carlo samples for Local-Privacy calibration.
    pub lp_samples: usize,
    /// Skip LP calibration (use ε as ε′ directly).
    pub no_calib: bool,
    /// EM operator used by SAM-family mechanisms (`--em-backend`; `Auto`
    /// unless a path is pinned explicitly, with `--dense-em` as the
    /// legacy alias for the dense reference path).
    pub em_backend: EmBackend,
    /// Worker threads for the job runner and every mechanism's sharded
    /// report pipeline (`None` = available parallelism). Estimates are
    /// bit-identical for any value.
    pub threads: Option<usize>,
    datasets: Arc<Mutex<HashMap<DatasetKind, Arc<SpatialDataset>>>>,
}

impl EvalContext {
    /// Builds a context from parsed CLI arguments.
    pub fn from_args(args: &CliArgs) -> Self {
        Self {
            seed: args.seed,
            repeats: args.repeats,
            user_cap: args.users,
            // Measured on this substrate: the transportation simplex solves
            // 400-support (d = 20) instances in ~0.5 s — faster *and*
            // unbiased vs Sinkhorn — so every paper-scale figure runs the
            // exact LP. Sinkhorn remains available for larger grids.
            exact_limit: 400,
            sinkhorn: SinkhornParams {
                reg_rel: 1e-3,
                max_iters: 400,
                tol: 1e-8,
                ..SinkhornParams::default()
            },
            w2_solver: args.w2_solver,
            lp_samples: if args.fast { 400 } else { 1200 },
            no_calib: args.no_calib,
            em_backend: args.em_backend,
            threads: args.threads,
            datasets: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// A copy of this context with a different report-pipeline thread
    /// count (the dataset cache is shared with the original).
    pub fn with_threads(&self, threads: Option<usize>) -> Self {
        Self { threads, ..self.clone() }
    }

    /// Loads (and caches) a dataset for this context's seed.
    pub fn dataset(&self, kind: DatasetKind) -> Arc<SpatialDataset> {
        let mut cache = self.datasets.lock();
        cache.entry(kind).or_insert_with(|| Arc::new(load(kind, self.seed))).clone()
    }

    /// The configured W₂ solver as a [`WassersteinMethod`], carrying
    /// this context's Sinkhorn tuning and thread budget. This is the
    /// **only** dispatch point: figure binaries pass it straight to
    /// [`w2`], which owns the size-based `Auto` resolution — harnesses
    /// must not re-derive the switch from `d²` (a predicted support),
    /// because the library switches on the *actual* nonzero support.
    pub fn w2_method(&self) -> WassersteinMethod {
        let sinkhorn = SinkhornParams { threads: self.threads, ..self.sinkhorn };
        self.w2_solver.method(self.exact_limit, sinkhorn)
    }

    /// A dataset part's points under this context's `--users` cap
    /// (prefix-truncation, the paper's subsampling protocol) — the one
    /// place cap semantics live, shared by every figure binary.
    pub fn capped_points<'a>(&self, part: &'a DatasetPart) -> &'a [dam_geo::Point] {
        match self.user_cap {
            Some(cap) if part.points.len() > cap => &part.points[..cap],
            _ => &part.points,
        }
    }

    /// Runs one mechanism on one dataset part at resolution `d` and
    /// returns `W₂(recovered, actual)` in cell units, averaged over
    /// `repeats` runs with independent derived RNGs.
    pub fn part_w2(
        &self,
        part: &DatasetPart,
        mech: &dyn SpatialEstimator,
        d: u32,
        stream: u64,
    ) -> f64 {
        let grid = Grid2D::new(part.bbox, d);
        let points = self.capped_points(part);
        let truth = Histogram2D::from_points(grid.clone(), points).normalized();
        let method = self.w2_method();
        let mut acc = 0.0;
        for rep in 0..self.repeats {
            let mut rng = derived(self.seed, stream ^ (0x5151_0000 + rep as u64));
            let est = mech.estimate(points, &grid, &mut rng).normalized();
            acc += w2(&est, &truth, method).expect("W2 computation failed");
        }
        acc / self.repeats as f64
    }

    /// Mean W₂ over a dataset's parts (the paper's aggregation for the
    /// Crime/NYC A/B/C splits).
    pub fn dataset_w2(
        &self,
        kind: DatasetKind,
        mech: &dyn SpatialEstimator,
        d: u32,
        stream: u64,
    ) -> f64 {
        let ds = self.dataset(kind);
        let mut acc = 0.0;
        for (i, part) in ds.parts.iter().enumerate() {
            acc += self.part_w2(part, mech, d, stream ^ ((i as u64 + 1) << 32));
        }
        acc / ds.parts.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dam_core::{DamConfig, DamEstimator};

    fn fast_ctx() -> EvalContext {
        let args = CliArgs {
            repeats: 1,
            users: Some(4000),
            seed: 7,
            fast: true,
            no_calib: true,
            ..CliArgs::default()
        };
        EvalContext::from_args(&args)
    }

    #[test]
    fn dataset_cache_returns_same_instance() {
        let ctx = fast_ctx();
        let a = ctx.dataset(DatasetKind::SZipf);
        let b = ctx.dataset(DatasetKind::SZipf);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn part_w2_is_finite_and_reasonable() {
        let ctx = fast_ctx();
        let ds = ctx.dataset(DatasetKind::SZipf);
        let mech = DamEstimator::new(DamConfig::dam(3.5));
        let w = ctx.part_w2(&ds.parts[0], &mech, 4, 1);
        assert!(w.is_finite() && (0.0..6.0).contains(&w), "w2 {w}");
    }

    #[test]
    fn more_budget_gives_lower_error() {
        let ctx = fast_ctx();
        let ds = ctx.dataset(DatasetKind::Normal);
        let lo = ctx.part_w2(&ds.parts[0], &DamEstimator::new(DamConfig::dam(0.7)), 4, 2);
        let hi = ctx.part_w2(&ds.parts[0], &DamEstimator::new(DamConfig::dam(6.0)), 4, 2);
        assert!(hi < lo, "eps 6 ({hi}) should beat eps 0.7 ({lo})");
    }
}
