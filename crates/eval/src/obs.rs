//! Harness-side observability glue: the process-wide wall clock, the
//! shared health footer every fig binary prints, and the `--metrics-out`
//! JSON writer.
//!
//! The harness is the **only** place wall time may enter the pipeline
//! (the `obs-clock-only` rule forbids raw `std::time` even here), and it
//! enters exactly once: [`wall`] hands out one process-wide
//! [`WallClock`]. Fig binaries install it on their pipelines' registries
//! so timing-plane instruments carry real nanoseconds, and time code
//! with [`dam_obs::Stopwatch`] over the same clock.

use dam_obs::{Registry, WallClock};
use dam_stream::PipelineHealth;
use std::io;
use std::path::Path;
use std::sync::OnceLock;

/// The process-wide wall clock (lazily constructed; its origin is the
/// first call, which is fine — consumers only subtract readings).
pub fn wall() -> &'static WallClock {
    static WALL: OnceLock<WallClock> = OnceLock::new();
    WALL.get_or_init(WallClock::new)
}

/// The one health footer format every fig binary prints (they used to
/// hand-roll near-copies): `<label> health: <summary>`.
pub fn health_footer(label: &str, health: &PipelineHealth) -> String {
    format!("{label} health: {}", health.summary())
}

/// Writes the registries' snapshots as one JSON document to `path`
/// (creating parent directories), keyed by section name:
/// `{"<section>": <snapshot>, ...}`. This is what `--metrics-out`
/// produces; section names are the binary's pipeline labels.
pub fn write_metrics(path: &Path, sections: &[(&str, &Registry)]) -> io::Result<()> {
    let mut out = String::from("{");
    for (i, (name, reg)) in sections.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        // Section labels are ASCII mechanism/K labels; escape the two
        // characters that could break the document anyway.
        let escaped = name.replace('\\', "\\\\").replace('"', "\\\"");
        out.push('"');
        out.push_str(&escaped);
        out.push_str("\":");
        out.push_str(&reg.snapshot().to_json());
    }
    out.push('}');
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dam_obs::{Clock, Plane};

    #[test]
    fn health_footer_matches_the_pinned_shape() {
        let h = PipelineHealth::default();
        let line = health_footer("K=4", &h);
        assert!(line.starts_with("K=4 health: "), "{line}");
        assert!(line.contains("seen 0"), "{line}");
    }

    #[test]
    fn write_metrics_emits_one_object_per_section() {
        let a = Registry::new();
        a.counter("ingest_reports_seen", Plane::Deterministic).add(3);
        let b = Registry::new();
        let dir = std::env::temp_dir().join(format!("dam-obs-test-{}", std::process::id()));
        let path = dir.join("metrics.json");
        write_metrics(&path, &[("DAM", &a), ("HUEM", &b)]).expect("write");
        let doc = std::fs::read_to_string(&path).expect("read back");
        let _ = std::fs::remove_dir_all(&dir);
        assert!(doc.starts_with('{') && doc.ends_with('}'), "{doc}");
        assert!(doc.contains("\"DAM\":{"), "{doc}");
        assert!(doc.contains("\"HUEM\":{"), "{doc}");
        assert!(doc.contains("\"ingest_reports_seen\""), "{doc}");
    }

    #[test]
    fn wall_clock_is_shared_and_monotone() {
        let a = wall().now_ns();
        let b = wall().now_ns();
        assert!(b >= a);
        assert!(std::ptr::eq(wall(), wall()), "one process-wide clock");
    }
}
