//! # dam-eval — the experiment harness
//!
//! One binary per table/figure of the paper (see DESIGN.md §4 for the
//! index). Every binary accepts:
//!
//! ```text
//! --repeats N   averaging repetitions            (default 3)
//! --users N     cap on users per dataset part    (default: full dataset)
//! --seed S      experiment seed                  (default 42)
//! --out DIR     CSV output directory             (default results/)
//! --fast        smoke-test mode: 1 repeat, 50k users, fewer MC samples
//!               (the fig9 large-d binaries keep full user counts — the
//!               sharded report pipeline makes them affordable)
//! --no-calib    use ε directly for SEM-Geo-I instead of LP calibration
//! --em-backend B  EM operator for SAM PostProcess: auto (default; picks
//!               the stencil or the FFT from the measured (d, b̂)
//!               crossover), conv, dense, or fft
//! --dense-em    legacy alias for --em-backend dense
//! --threads N   worker threads for the job runner and the sharded report
//!               pipeline (default: available parallelism; results are
//!               bit-identical for any value)
//! --metrics-out PATH  write the run's dam-obs metrics registries as one
//!               JSON document (sections keyed by pipeline label; see
//!               README "Observability")
//! ```
//!
//! Results are printed as aligned tables and written as CSV under the
//! output directory; `EXPERIMENTS.md` records the paper-vs-measured
//! comparison for every row.

#![forbid(unsafe_code)]

pub mod cli;
pub mod context;
pub mod mechspec;
pub mod obs;
pub mod params;
pub mod report;
pub mod runner;

pub use cli::CliArgs;
pub use context::EvalContext;
pub use mechspec::MechSpec;
pub use report::Report;
pub use runner::{run_jobs, Job, JobResult};
