//! The paper's parameter grids (Tables IV and V), with defaults.

/// Table IV: the spatial-experiment parameter grid.
pub struct Table4;

impl Table4 {
    /// Norm-distance multipliers swept in Figure 8 (`0.33b̌ … 1.67b̌`).
    pub const B_FACTORS: [f64; 5] = [0.33, 0.67, 1.0, 1.33, 1.67];
    /// Small grid resolutions (exact-LP regime, Figures 9a–e).
    pub const D_SMALL: [u32; 5] = [1, 2, 3, 4, 5];
    /// Large grid resolutions (Sinkhorn regime, Figures 9f–j).
    pub const D_LARGE: [u32; 5] = [1, 5, 10, 15, 20];
    /// Small privacy budgets (Figures 9k–o).
    pub const EPS_SMALL: [f64; 5] = [0.7, 1.4, 2.1, 2.8, 3.5];
    /// Large privacy budgets (Figures 9p–t).
    pub const EPS_LARGE: [f64; 5] = [5.0, 6.0, 7.0, 8.0, 9.0];
    /// Default discrete side length (bold in Table IV).
    pub const D_DEFAULT: u32 = 15;
    /// Default budget for the d sweeps (bold in Table IV).
    pub const EPS_DEFAULT: f64 = 3.5;
    /// Budget used for the large-d sweep (§VII-C2).
    pub const EPS_LARGE_D: f64 = 5.0;
}

/// Table V: the trajectory-experiment parameter grid.
pub struct Table5;

impl Table5 {
    /// Grid resolutions of Figure 14(a).
    pub const D_VALUES: [u32; 5] = [1, 5, 10, 15, 20];
    /// Privacy budgets of Figure 14(b).
    pub const EPS_VALUES: [f64; 5] = [0.5, 1.0, 1.5, 2.0, 2.5];
    /// Defaults (d = 15, ε = 1.5).
    pub const D_DEFAULT: u32 = 15;
    /// Default trajectory budget.
    pub const EPS_DEFAULT: f64 = 1.5;
    /// Workload shape: base grid, trajectory count, length range.
    pub const BASE_GRID: u32 = 300;
    /// Number of sampled trajectories.
    pub const N_TRAJS: usize = 1000;
    /// Trajectory length range.
    pub const LEN_RANGE: (usize, usize) = (2, 200);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_match_table_iv() {
        assert_eq!(Table4::EPS_SMALL.len() + Table4::EPS_LARGE.len(), 10);
        assert_eq!(Table4::D_SMALL[4], 5);
        assert_eq!(Table4::D_LARGE[4], 20);
        assert_eq!(Table4::B_FACTORS[2], 1.0);
    }

    #[test]
    fn grids_match_table_v() {
        assert_eq!(Table5::EPS_VALUES, [0.5, 1.0, 1.5, 2.0, 2.5]);
        assert_eq!(Table5::N_TRAJS, 1000);
        assert_eq!(Table5::LEN_RANGE, (2, 200));
        assert_eq!(Table5::BASE_GRID, 300);
    }
}
