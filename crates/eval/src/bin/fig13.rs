//! Figure 13 (Appendix C): the four W₂ sweeps on the Crime dataset with
//! its *full* domain — (a) small d, (b) large d, (c) small ε, (d) large ε.
//! Expected: same orderings as the part-wise experiments, except
//! SEM-Geo-I slightly ahead of DAM at large ε (the coarse full domain has
//! few non-zero cells, so LDP noise obscures more signal).

use dam_data::DatasetKind;
use dam_eval::params::Table4;
use dam_eval::report::fmt4;
use dam_eval::{run_jobs, CliArgs, EvalContext, Job, MechSpec, Report};

fn sweep(
    ctx: &EvalContext,
    args: &CliArgs,
    title: &str,
    csv: &str,
    xs: &[(String, u32, f64)],
    mechs: &[MechSpec],
) {
    let mut jobs = Vec::new();
    for (_, d, eps) in xs {
        for &mech in mechs {
            jobs.push(Job { dataset: DatasetKind::CrimeFull, mech, d: *d, eps: *eps });
        }
    }
    let results = run_jobs(ctx, &jobs, args.threads);
    let mut header = vec!["x".to_string()];
    header.extend(mechs.iter().map(|m| m.label()));
    let mut report = Report::new(title, &header.iter().map(|s| s.as_str()).collect::<Vec<_>>());
    let mut idx = 0;
    for (label, _, _) in xs {
        let mut row = vec![label.clone()];
        for _ in mechs {
            row.push(fmt4(results[idx].w2));
            idx += 1;
        }
        report.push_row(row);
    }
    println!("{}", report.render());
    let path = report.write_csv(&args.out, csv).expect("write csv");
    println!("csv: {}", path.display());
}

fn main() {
    let args = CliArgs::parse();
    let ctx = EvalContext::from_args(&args);
    let all = MechSpec::FIGURE9_ALL.to_vec();
    let two = MechSpec::FIGURE9_LARGE.to_vec();

    let small_d: Vec<(String, u32, f64)> =
        Table4::D_SMALL.iter().map(|&d| (format!("d={d}"), d, Table4::EPS_DEFAULT)).collect();
    sweep(&ctx, &args, "Figure 13(a): Crime full domain, small d", "fig13a", &small_d, &all);

    let large_d: Vec<(String, u32, f64)> =
        Table4::D_LARGE.iter().map(|&d| (format!("d={d}"), d, Table4::EPS_LARGE_D)).collect();
    sweep(&ctx, &args, "Figure 13(b): Crime full domain, large d", "fig13b", &large_d, &two);

    let small_eps: Vec<(String, u32, f64)> =
        Table4::EPS_SMALL.iter().map(|&e| (format!("eps={e}"), 5, e)).collect();
    sweep(
        &ctx,
        &args,
        "Figure 13(c): Crime full domain, small eps (d=5)",
        "fig13c",
        &small_eps,
        &all,
    );

    let large_eps: Vec<(String, u32, f64)> =
        Table4::EPS_LARGE.iter().map(|&e| (format!("eps={e}"), Table4::D_DEFAULT, e)).collect();
    sweep(
        &ctx,
        &args,
        "Figure 13(d): Crime full domain, large eps (d=15)",
        "fig13d",
        &large_eps,
        &two,
    );
}
