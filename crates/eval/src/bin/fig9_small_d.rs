//! Figure 9(a–e): W₂ vs discrete side length d ∈ {1..5} at ε = 3.5, for
//! SEM-Geo-I, MDSW, HUEM, DAM and DAM-NS on all five datasets, with the
//! exact LP W₂ (the paper's small-d regime). Expected shape: W₂ grows
//! with d for every mechanism; DAM below MDSW everywhere; DAM ≥ DAM-NS gap
//! visible on the road-network (city) datasets.

use dam_data::DatasetKind;
use dam_eval::params::Table4;
use dam_eval::report::fmt4;
use dam_eval::{run_jobs, CliArgs, EvalContext, Job, MechSpec, Report};

fn main() {
    let args = CliArgs::parse();
    let ctx = EvalContext::from_args(&args);
    let mechs = MechSpec::FIGURE9_ALL;
    let mut jobs = Vec::new();
    for &ds in &DatasetKind::FIGURE_ORDER {
        for &d in &Table4::D_SMALL {
            for &mech in &mechs {
                jobs.push(Job { dataset: ds, mech, d, eps: Table4::EPS_DEFAULT });
            }
        }
    }
    let results = run_jobs(&ctx, &jobs, args.threads);

    let mut idx = 0;
    for &ds in &DatasetKind::FIGURE_ORDER {
        let mut header = vec!["d".to_string()];
        header.extend(mechs.iter().map(|m| m.label()));
        let mut report = Report::new(
            &format!("Figure 9 (small d): {} (eps=3.5, exact W2)", ds.label()),
            &header.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
        );
        for &d in &Table4::D_SMALL {
            let mut row = vec![d.to_string()];
            for _ in &mechs {
                row.push(fmt4(results[idx].w2));
                idx += 1;
            }
            report.push_row(row);
        }
        println!("{}", report.render());
        let name = format!("fig9_small_d_{}", ds.label().to_lowercase());
        let path = report.write_csv(&args.out, &name).expect("write csv");
        println!("csv: {}", path.display());
    }
}
