//! Scratch probe (see git history) — exact vs Sinkhorn at d=20.
use dam_core::{DamConfig, DamEstimator, SpatialEstimator};
use dam_data::{load, DatasetKind};
use dam_geo::rng::seeded;
use dam_geo::{Grid2D, Histogram2D};
use dam_transport::metrics::{w2, WassersteinMethod};
use dam_transport::SinkhornParams;

fn main() {
    let ds = load(DatasetKind::SZipf, 42);
    let part = &ds.parts[0];
    for d in [20u32, 30] {
        let grid = Grid2D::new(part.bbox, d);
        let truth = Histogram2D::from_points(grid.clone(), &part.points).normalized();
        let mut rng = seeded(9);
        let est = DamEstimator::new(DamConfig::dam(5.0)).estimate(&part.points, &grid, &mut rng);
        for (name, m) in [
            ("exact", WassersteinMethod::Exact),
            (
                "sink reg1e-3",
                WassersteinMethod::Sinkhorn(SinkhornParams {
                    reg_rel: 1e-3,
                    max_iters: 400,
                    tol: 1e-8,
                }),
            ),
        ] {
            let t = std::time::Instant::now();
            let v = w2(&est, &truth, m).unwrap();
            println!("d={d} {name:14} W2={v:.4}  ({:.2}s)", t.elapsed().as_secs_f64());
        }
    }
}
