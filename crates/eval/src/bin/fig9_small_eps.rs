//! Figure 9(k–o): W₂ vs ε ∈ {0.7, 1.4, 2.1, 2.8, 3.5} for all five
//! mechanisms. The paper must keep d small here so SEM-Geo-I's `n^k`
//! output domain stays feasible at small ε ("we must set d to a small
//! value when ε is small", §VII-C3); we use d = 5, the largest
//! exact-LP-friendly resolution of Table IV's small range. Expected
//! shape: W₂ falls as ε grows; SEM-Geo-I slightly ahead at the smallest
//! budgets, DAM ahead of MDSW throughout.

use dam_data::DatasetKind;
use dam_eval::params::Table4;
use dam_eval::report::fmt4;
use dam_eval::{run_jobs, CliArgs, EvalContext, Job, MechSpec, Report};

fn main() {
    let args = CliArgs::parse();
    let ctx = EvalContext::from_args(&args);
    let mechs = MechSpec::FIGURE9_ALL;
    let d = 5;
    let mut jobs = Vec::new();
    for &ds in &DatasetKind::FIGURE_ORDER {
        for &eps in &Table4::EPS_SMALL {
            for &mech in &mechs {
                jobs.push(Job { dataset: ds, mech, d, eps });
            }
        }
    }
    let results = run_jobs(&ctx, &jobs, args.threads);

    let mut idx = 0;
    for &ds in &DatasetKind::FIGURE_ORDER {
        let mut header = vec!["eps".to_string()];
        header.extend(mechs.iter().map(|m| m.label()));
        let mut report = Report::new(
            &format!("Figure 9 (small eps): {} (d=5, exact W2)", ds.label()),
            &header.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
        );
        for &eps in &Table4::EPS_SMALL {
            let mut row = vec![format!("{eps}")];
            for _ in &mechs {
                row.push(fmt4(results[idx].w2));
                idx += 1;
            }
            report.push_row(row);
        }
        println!("{}", report.render());
        let name = format!("fig9_small_eps_{}", ds.label().to_lowercase());
        let path = report.write_csv(&args.out, &name).expect("write csv");
        println!("csv: {}", path.display());
    }
}
