//! Figure 9(f–j): W₂ vs d ∈ {1, 5, 10, 15, 20} at ε = 5 for SEM-Geo-I vs
//! DAM, with Sinkhorn-approximated W₂ (the paper's large-d regime).
//! Expected shape: both curves grow with d; DAM overtakes SEM-Geo-I once
//! d is large enough that the discrete disk approximates the continuous
//! one.

use dam_data::DatasetKind;
use dam_eval::params::Table4;
use dam_eval::report::fmt4;
use dam_eval::{run_jobs, CliArgs, EvalContext, Job, MechSpec, Report};

fn main() {
    // Full user counts by default, even under --fast: the sharded report
    // pipeline makes the large-d regime affordable (explicit --users
    // still caps).
    let args = CliArgs::parse().with_full_users();
    let ctx = EvalContext::from_args(&args);
    let mechs = MechSpec::FIGURE9_LARGE;
    let mut jobs = Vec::new();
    for &ds in &DatasetKind::FIGURE_ORDER {
        for &d in &Table4::D_LARGE {
            for &mech in &mechs {
                jobs.push(Job { dataset: ds, mech, d, eps: Table4::EPS_LARGE_D });
            }
        }
    }
    let results = run_jobs(&ctx, &jobs, args.threads);

    let mut idx = 0;
    for &ds in &DatasetKind::FIGURE_ORDER {
        let mut header = vec!["d".to_string()];
        header.extend(mechs.iter().map(|m| m.label()));
        let mut report = Report::new(
            &format!("Figure 9 (large d): {} (eps=5, exact W2)", ds.label()),
            &header.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
        );
        for &d in &Table4::D_LARGE {
            let mut row = vec![d.to_string()];
            for _ in &mechs {
                row.push(fmt4(results[idx].w2));
                idx += 1;
            }
            report.push_row(row);
        }
        println!("{}", report.render());
        let name = format!("fig9_large_d_{}", ds.label().to_lowercase());
        let path = report.write_csv(&args.out, &name).expect("write csv");
        println!("csv: {}", path.display());
    }
}
