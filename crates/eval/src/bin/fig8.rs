//! Figure 8: W₂ of DAM as the norm distance `b` varies from `0.33b̌` to
//! `1.67b̌` (d = 15, ε = 3.5, five datasets). The paper's finding: W₂ is
//! minimised near the mutual-information-optimal `b̌` (§V-C), with the
//! caveat that grid-division error can shift the empirical minimum by one
//! cell.

use dam_data::DatasetKind;
use dam_eval::params::Table4;
use dam_eval::report::fmt4;
use dam_eval::{run_jobs, CliArgs, EvalContext, Job, MechSpec, Report};

fn main() {
    let args = CliArgs::parse();
    let ctx = EvalContext::from_args(&args);
    let datasets = DatasetKind::FIGURE_ORDER;
    let mut jobs = Vec::new();
    for &ds in &datasets {
        for &f in &Table4::B_FACTORS {
            jobs.push(Job {
                dataset: ds,
                mech: MechSpec::DamWithBFactor(f),
                d: Table4::D_DEFAULT,
                eps: Table4::EPS_DEFAULT,
            });
        }
    }
    let results = run_jobs(&ctx, &jobs, args.threads);

    let mut header = vec!["b/b̌".to_string()];
    header.extend(datasets.iter().map(|d| d.label().to_string()));
    let mut report = Report::new(
        "Figure 8: W2 vs norm distance b (d=15, eps=3.5)",
        &header.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    for (fi, &f) in Table4::B_FACTORS.iter().enumerate() {
        let mut row = vec![format!("{f:.2}")];
        for (di, _) in datasets.iter().enumerate() {
            row.push(fmt4(results[di * Table4::B_FACTORS.len() + fi].w2));
        }
        report.push_row(row);
    }
    println!("{}", report.render());
    let path = report.write_csv(&args.out, "fig8").expect("write csv");
    println!("csv: {}", path.display());
}
