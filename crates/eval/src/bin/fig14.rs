//! Figure 14 (Appendix D): trajectory experiments on NYC — W₂ of the
//! recovered point distribution for LDPTrace, PivotTrace and DAM,
//! (a) varying d at ε = 1.5 and (b) varying ε at d = 15. Expected shape:
//! W₂ grows with d for all three; DAM consistently below both trajectory
//! mechanisms (they spend budget on direction rather than density);
//! PivotTrace and DAM decrease with ε while LDPTrace fluctuates.

use dam_data::DatasetKind;
use dam_eval::params::Table5;
use dam_eval::report::fmt4;
use dam_eval::{CliArgs, EvalContext, Report};
use dam_geo::rng::derived;
use dam_geo::Grid2D;
use dam_trajectory::mechanism::{true_distribution, TrajectoryMechanism};
use dam_trajectory::{sample_workload, DamOnPoints, LdpTrace, PivotTrace, Trajectory};
use dam_transport::metrics::w2;

fn mechanisms(eps: f64) -> Vec<Box<dyn TrajectoryMechanism>> {
    vec![
        Box::new(LdpTrace::new(eps)),
        Box::new(PivotTrace::new(eps)),
        Box::new(DamOnPoints::new(eps)),
    ]
}

fn point_w2(
    ctx: &EvalContext,
    trajs: &[Trajectory],
    bbox: dam_geo::BoundingBox,
    mech: &dyn TrajectoryMechanism,
    d: u32,
    stream: u64,
) -> f64 {
    let grid = Grid2D::new(bbox, d);
    let truth = true_distribution(trajs, &grid);
    // One dispatch implementation: the context's method goes straight to
    // `w2`, which resolves `Auto` on the *actual* support sizes (the old
    // d²-based re-derivation here could disagree with the library for
    // sparse estimates near the exact-LP threshold).
    let method = ctx.w2_method();
    let mut acc = 0.0;
    for rep in 0..ctx.repeats {
        let mut rng = derived(ctx.seed, stream ^ (0x7A70_0000 + rep as u64));
        let est = mech.estimate_distribution(trajs, &grid, &mut rng);
        acc += w2(&est, &truth, method).expect("W2 computation failed");
    }
    acc / ctx.repeats as f64
}

fn main() {
    let args = CliArgs::parse();
    let ctx = EvalContext::from_args(&args);

    // Build the paper's workload: 300×300 base grid over the full NYC
    // domain, 1,000 trajectories of length 2–200.
    eprintln!("sampling trajectory workload ...");
    let base = ctx.dataset(DatasetKind::NycFull);
    let part = &base.parts[0];
    let base_grid = Grid2D::new(part.bbox, Table5::BASE_GRID);
    let n_trajs = if args.fast { 200 } else { Table5::N_TRAJS };
    let mut wl_rng = derived(ctx.seed, 0x7247);
    let trajs = sample_workload(&part.points, &base_grid, n_trajs, Table5::LEN_RANGE, &mut wl_rng);
    eprintln!(
        "workload: {} trajectories, {} points total",
        trajs.len(),
        trajs.iter().map(|t| t.len()).sum::<usize>()
    );

    // (a) vary d at the default budget.
    let mech_names = ["LDPTrace", "PivotTrace", "DAM"];
    let mut header = vec!["d".to_string()];
    header.extend(mech_names.iter().map(|s| s.to_string()));
    let mut rep_a = Report::new(
        "Figure 14(a): trajectory W2 vs d (eps=1.5, NYC)",
        &header.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    for (xi, &d) in Table5::D_VALUES.iter().enumerate() {
        let mut row = vec![d.to_string()];
        for (mi, mech) in mechanisms(Table5::EPS_DEFAULT).iter().enumerate() {
            let v = point_w2(&ctx, &trajs, part.bbox, mech.as_ref(), d, (xi * 8 + mi) as u64);
            eprintln!("  fig14a {} d={d} -> {v:.4}", mech.name());
            row.push(fmt4(v));
        }
        rep_a.push_row(row);
    }
    println!("{}", rep_a.render());
    println!("csv: {}", rep_a.write_csv(&args.out, "fig14a").expect("csv").display());

    // (b) vary eps at the default resolution.
    let mut header_b = vec!["eps".to_string()];
    header_b.extend(mech_names.iter().map(|s| s.to_string()));
    let mut rep_b = Report::new(
        "Figure 14(b): trajectory W2 vs eps (d=15, NYC)",
        &header_b.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    for (xi, &eps) in Table5::EPS_VALUES.iter().enumerate() {
        let mut row = vec![format!("{eps}")];
        for (mi, mech) in mechanisms(eps).iter().enumerate() {
            let v = point_w2(
                &ctx,
                &trajs,
                part.bbox,
                mech.as_ref(),
                Table5::D_DEFAULT,
                (1000 + xi * 8 + mi) as u64,
            );
            eprintln!("  fig14b {} eps={eps} -> {v:.4}", mech.name());
            row.push(fmt4(v));
        }
        rep_b.push_row(row);
    }
    println!("{}", rep_b.render());
    println!("csv: {}", rep_b.write_csv(&args.out, "fig14b").expect("csv").display());
}
