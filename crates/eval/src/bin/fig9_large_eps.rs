//! Figure 9(p–t): W₂ vs ε ∈ {5..9} at d = 15 for SEM-Geo-I vs DAM, with
//! Sinkhorn-approximated W₂. Expected shape: both fall towards zero as ε
//! grows; DAM ahead of SEM-Geo-I at large ε.

use dam_data::DatasetKind;
use dam_eval::params::Table4;
use dam_eval::report::fmt4;
use dam_eval::{run_jobs, CliArgs, EvalContext, Job, MechSpec, Report};

fn main() {
    // Full user counts by default, even under --fast: the sharded report
    // pipeline makes the large-eps regime affordable (explicit --users
    // still caps).
    let args = CliArgs::parse().with_full_users();
    let ctx = EvalContext::from_args(&args);
    let mechs = MechSpec::FIGURE9_LARGE;
    let mut jobs = Vec::new();
    for &ds in &DatasetKind::FIGURE_ORDER {
        for &eps in &Table4::EPS_LARGE {
            for &mech in &mechs {
                jobs.push(Job { dataset: ds, mech, d: Table4::D_DEFAULT, eps });
            }
        }
    }
    let results = run_jobs(&ctx, &jobs, args.threads);

    let mut idx = 0;
    for &ds in &DatasetKind::FIGURE_ORDER {
        let mut header = vec!["eps".to_string()];
        header.extend(mechs.iter().map(|m| m.label()));
        let mut report = Report::new(
            &format!("Figure 9 (large eps): {} (d=15, exact W2)", ds.label()),
            &header.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
        );
        for &eps in &Table4::EPS_LARGE {
            let mut row = vec![format!("{eps}")];
            for _ in &mechs {
                row.push(fmt4(results[idx].w2));
                idx += 1;
            }
            report.push_row(row);
        }
        println!("{}", report.render());
        let name = format!("fig9_large_eps_{}", ds.label().to_lowercase());
        let path = report.write_csv(&args.out, &name).expect("write csv");
        println!("csv: {}", path.display());
    }
}
