//! Fault-tolerant multi-node aggregation: the distributed face of the
//! streaming pipeline.
//!
//! K aggregator nodes (K ∈ {1, 4, 8}) each ingest their shard partition
//! of the same moving two-foci stream `fig_stream` uses; a coordinator
//! collects their epoch planes under the deterministic retry/backoff
//! schedule, closes windows on quorum, and publishes warm-started window
//! estimates. Per epoch and K the table reports arrived-node coverage
//! and TV/W₂ against a **single-node reference** pipeline fed the exact
//! same epochs (plus TV against the true sliding-window histogram) —
//! with no faults injected, every row's `tv_ref` is 0.0000: K merged
//! partitions are bit-identical to the single node. (`w2_ref` never
//! reaches 0: the grid-separable solver is entropically regularized and
//! scores a self-cost floor even on identical inputs — the printed
//! `w2_ref floor` line is its zero point.) `--inject
//! "seed=7,crash=0.05,delay=0.2,delaymax=2,dup=0.1,corrupt=0.02"` turns
//! the run into a cluster chaos experiment driven by a
//! [`dam_fault::NodeFaultPlan`]; a [`dam_stream::PipelineHealth`] footer
//! per K shows what the coordinator rode out.
//!
//! Two hard checks run after the sweep (both assert, so the CI smoke
//! fails loudly if either regresses):
//!
//! * **Crash recovery** — a K=4 coordinator with a checkpoint store is
//!   killed cold mid-stream, recovered from checkpoint + WAL, and run to
//!   the end: every post-recovery estimate must be bit-identical to the
//!   uninterrupted run's.
//! * **Quorum degradation** — one of eight nodes is forced dark for a
//!   full window: every close must still make quorum, the degradation
//!   must be visible (`nodes_missed`, `partial_window`), and the mean
//!   truth-TV over the degraded window must stay within 2× of the
//!   all-nodes steady state.

use dam_cluster::{CheckpointStore, Cluster, ClusterConfig};
use dam_core::DamConfig;
use dam_data::synthetic::standard_normal;
use dam_eval::report::fmt4;
use dam_eval::{CliArgs, EvalContext, Report};
use dam_fault::NodeFaultPlan;
use dam_geo::rng::derived;
use dam_geo::{BoundingBox, Grid2D, Histogram2D, Point};
use dam_stream::{StreamConfig, StreamingEstimator};
use dam_transport::metrics::w2;
use dam_transport::W2Solver;
use rand::Rng;

const D: u32 = 20;
const EPS: f64 = 3.5;
const BACKGROUND: f64 = 0.1;
const DRIFT_PER_EPOCH: f64 = 0.03;
const NODE_COUNTS: [usize; 3] = [1, 4, 8];

/// The fig_stream scenario: two foci sliding in opposite directions.
fn epoch_points(n: usize, u: f64, rng: &mut impl Rng) -> Vec<Point> {
    let foci = [(0.15 + 0.70 * u, 0.25 + 0.30 * u), (0.85 - 0.70 * u, 0.75 - 0.30 * u)];
    (0..n)
        .map(|_| {
            if rng.gen::<f64>() < BACKGROUND {
                return Point::new(rng.gen(), rng.gen());
            }
            let (cx, cy) = foci[usize::from(rng.gen::<f64>() < 0.45)];
            Point::new(
                (cx + 0.05 * standard_normal(rng)).clamp(0.0, 1.0),
                (cy + 0.05 * standard_normal(rng)).clamp(0.0, 1.0),
            )
        })
        .collect()
}

fn stream_config(ctx: &EvalContext, window: usize) -> StreamConfig {
    let dam = DamConfig::dam(EPS).with_threads(ctx.threads);
    StreamConfig::new(dam, window, ctx.seed ^ 0x0C10_57E2)
}

fn bits(values: &[f64]) -> Vec<u64> {
    values.iter().map(|v| v.to_bits()).collect()
}

fn main() {
    let args = CliArgs::parse();
    let ctx = EvalContext::from_args(&args);
    let plan = args
        .inject
        .as_deref()
        .map(|spec| NodeFaultPlan::parse(spec).unwrap_or_else(|e| panic!("{e}")))
        .unwrap_or_else(|| NodeFaultPlan::clean(ctx.seed));
    let epochs = args.epochs.unwrap_or(if args.fast { 8 } else { 20 });
    let window = args.window.unwrap_or(if args.fast { 4 } else { 6 }).min(epochs);
    let per_epoch = (args.users.unwrap_or(20_000 * epochs) / epochs).max(1);
    let grid = Grid2D::new(BoundingBox::unit(), D);
    let w2_ctx = if args.w2_solver == W2Solver::Auto {
        let mut grid_ctx = ctx.clone();
        grid_ctx.w2_solver = W2Solver::Grid;
        grid_ctx
    } else {
        ctx.clone()
    };
    let w2_method = w2_ctx.w2_method();

    // Shared stream: every cluster size sees identical epochs.
    let epoch_data: Vec<Vec<Point>> = (0..epochs)
        .map(|e| {
            let u = (e as f64 * DRIFT_PER_EPOCH).min(1.0);
            epoch_points(per_epoch, u, &mut derived(ctx.seed, 0xC105_7E00 + e as u64))
        })
        .collect();
    let truths: Vec<Histogram2D> = (0..epochs)
        .map(|e| {
            let lo = (e + 1).saturating_sub(window);
            let pts: Vec<Point> =
                epoch_data[lo..=e].iter().flat_map(|p| p.iter().copied()).collect();
            Histogram2D::from_points(grid.clone(), &pts).normalized()
        })
        .collect();

    // Single-node reference: the plain streaming estimator, no faults.
    let reference: Vec<Histogram2D> = {
        let mut single = StreamingEstimator::new(grid.clone(), stream_config(&ctx, window));
        (0..epochs)
            .map(|e| {
                single.ingest_epoch(&epoch_data[e]);
                single.estimate_window().histogram
            })
            .collect()
    };

    let mut report = Report::new(
        &format!(
            "Multi-node aggregation (d={D}, eps={EPS}, {per_epoch} users/epoch, \
             {epochs} epochs, window {window}, plan {})",
            plan.spec()
        ),
        &["epoch", "K", "arrived", "missed", "tv_ref", "w2_ref", "tv_truth"],
    );
    let mut footers = Vec::new();
    // Registry per K, kept after each cluster is dropped (the registry is
    // a cheap shared handle) so --metrics-out can export all of them.
    let mut registries: Vec<(String, dam_obs::Registry)> = Vec::new();
    for &k in &NODE_COUNTS {
        let mut cluster =
            Cluster::new(grid.clone(), stream_config(&ctx, window), ClusterConfig::new(k), plan);
        for e in 0..epochs {
            let out = cluster.ingest_epoch(&epoch_data[e]).expect("no store attached");
            let est = &out.snapshot.estimate;
            let tv_ref = est.tv_distance(&reference[e]);
            let w2_ref = w2(est, &reference[e], w2_method).expect("w2");
            let tv_truth = est.tv_distance(&truths[e]);
            if plan.is_clean() {
                // No faults: the K partitions must merge bit-identically
                // to the single node, all the way through EM.
                assert_eq!(
                    bits(est.values()),
                    bits(reference[e].values()),
                    "K={k} epoch {e}: clean cluster diverged from the single-node reference"
                );
            }
            report.push_row(vec![
                e.to_string(),
                k.to_string(),
                out.arrived.to_string(),
                if out.missed { "yes".into() } else { "no".into() },
                fmt4(tv_ref),
                fmt4(w2_ref),
                fmt4(tv_truth),
            ]);
        }
        footers.push(dam_eval::obs::health_footer(
            &format!("K={k}"),
            &cluster.coordinator().snapshot().health,
        ));
        registries.push((format!("K={k}"), cluster.coordinator().estimator().obs().clone()));
    }
    println!("{}", report.render());
    // The grid-separable W₂ solver is entropically regularized: identical
    // histograms score its self-cost, not 0. Print the floor so w2_ref
    // reads as distance *above* it (tv_ref has no such floor).
    let w2_floor = w2(&reference[epochs - 1], &reference[epochs - 1], w2_method).expect("w2");
    println!("w2_ref floor: {w2_floor:.4} (grid-Sinkhorn self-cost of identical histograms)");
    for footer in &footers {
        println!("{footer}");
    }

    // ---- hard check 1: crash recovery is bit-identical -----------------
    {
        let k = 4;
        let kill_at = (epochs / 2).max(1);
        let dir =
            std::env::temp_dir().join(format!("dam-fig-cluster-recovery-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = ClusterConfig::new(k);
        let uninterrupted: Vec<Vec<u64>> = {
            let mut c = Cluster::new(grid.clone(), stream_config(&ctx, window), cfg, plan);
            (0..epochs)
                .map(|e| bits(c.ingest_epoch(&epoch_data[e]).unwrap().snapshot.estimate.values()))
                .collect()
        };
        {
            let store = CheckpointStore::new(&dir).expect("scratch dir");
            let mut doomed =
                Cluster::with_store(grid.clone(), stream_config(&ctx, window), cfg, plan, store, 2)
                    .expect("fresh store");
            for e in 0..kill_at {
                doomed.ingest_epoch(&epoch_data[e]).expect("pre-kill epoch");
            }
            // Killed cold here: dropped with a WAL tail past the last
            // checkpoint, no shutdown path.
        }
        let store = CheckpointStore::new(&dir).expect("scratch dir");
        let mut revived =
            Cluster::with_store(grid.clone(), stream_config(&ctx, window), cfg, plan, store, 2)
                .expect("recovery");
        assert_eq!(revived.coordinator().next_epoch(), kill_at, "recovery lost epochs");
        for e in kill_at..epochs {
            let out = revived.ingest_epoch(&epoch_data[e]).expect("post-recovery epoch");
            assert_eq!(
                bits(out.snapshot.estimate.values()),
                uninterrupted[e],
                "epoch {e}: post-recovery estimate diverged from the uninterrupted run"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
        println!(
            "recovery check: K={k} coordinator killed after epoch {kill_at}, recovered from \
             checkpoint + WAL; all {} post-recovery estimates bit-identical",
            epochs - kill_at
        );
    }

    // ---- hard check 2: quorum degradation stays graceful ----------------
    {
        let k = 8;
        let mut cluster = Cluster::new(
            grid.clone(),
            stream_config(&ctx, window),
            ClusterConfig::new(k),
            NodeFaultPlan::clean(ctx.seed),
        );
        // Steady state first (full coverage), then one node dark for a
        // full window.
        let steady_end = epochs.saturating_sub(window).max(window);
        let mut steady_tv = 0.0;
        let mut steady_n = 0usize;
        for e in 0..steady_end {
            let out = cluster.ingest_epoch(&epoch_data[e]).unwrap();
            assert_eq!(out.arrived, k);
            if e + 1 >= window {
                steady_tv += out.snapshot.estimate.tv_distance(&truths[e]);
                steady_n += 1;
            }
        }
        cluster.force_outage(3, true);
        let mut degraded_tv = 0.0;
        let mut degraded_n = 0usize;
        for e in steady_end..epochs {
            let out = cluster.ingest_epoch(&epoch_data[e]).unwrap();
            assert_eq!(out.arrived, k - 1, "epoch {e} must close on {} of {k} nodes", k - 1);
            assert!(!out.missed, "7 of 8 nodes is comfortably above quorum");
            assert!(out.snapshot.health.partial_window, "degradation must be flagged");
            degraded_tv += out.snapshot.estimate.tv_distance(&truths[e]);
            degraded_n += 1;
        }
        let health = cluster.coordinator().snapshot().health;
        assert_eq!(health.nodes_missed, degraded_n, "one missing node per degraded epoch");
        let steady_mean = steady_tv / steady_n.max(1) as f64;
        let degraded_mean = degraded_tv / degraded_n.max(1) as f64;
        assert!(
            degraded_mean <= 2.0 * steady_mean,
            "quorum degradation not graceful: degraded tv {degraded_mean:.4} > 2x steady \
             {steady_mean:.4}"
        );
        println!(
            "quorum check: 1 of {k} nodes dark for {degraded_n} epochs — mean truth-TV \
             {degraded_mean:.4} vs {steady_mean:.4} all-nodes steady state ({:.2}x, bound 2x), \
             nodes_missed={}, partial_window flagged",
            degraded_mean / steady_mean.max(f64::MIN_POSITIVE),
            health.nodes_missed
        );
    }

    if let Some(path) = &args.metrics_out {
        let sections: Vec<(&str, &dam_obs::Registry)> =
            registries.iter().map(|(label, reg)| (label.as_str(), reg)).collect();
        dam_eval::obs::write_metrics(path, &sections).expect("write metrics");
        println!("metrics: {}", path.display());
    }
    let path = report.write_csv(&args.out, "fig_cluster").expect("write csv");
    println!("csv: {}", path.display());
}
