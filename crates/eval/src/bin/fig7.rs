//! Figure 7: the datasets — rendered as ASCII density maps (log-scaled)
//! and exported as CSV point samples for external plotting.

use dam_data::DatasetKind;
use dam_eval::{CliArgs, EvalContext, Report};
use dam_geo::{Grid2D, Histogram2D};

/// Density shades from empty to dense.
const SHADES: [char; 7] = [' ', '.', ':', '-', '=', '%', '@'];

fn ascii_density(h: &Histogram2D, cols: u32) -> String {
    let d = h.grid().d();
    let max = h.values().iter().cloned().fold(0.0f64, f64::max).max(1.0);
    let mut out = String::new();
    for iy in (0..d).rev() {
        out.push_str("  ");
        for ix in 0..cols.min(d) {
            let v = h.get(dam_geo::CellIndex::new(ix, iy));
            let t = if v <= 0.0 { 0.0 } else { (1.0 + v).ln() / (1.0 + max).ln() };
            let idx = ((t * (SHADES.len() - 1) as f64).round() as usize).min(SHADES.len() - 1);
            out.push(SHADES[idx]);
        }
        out.push('\n');
    }
    out
}

fn main() {
    let args = CliArgs::parse();
    let ctx = EvalContext::from_args(&args);
    let mut report = Report::new(
        "Figure 7: dataset summary",
        &["dataset", "part", "points", "nonzero cells (48x48)"],
    );
    for kind in DatasetKind::FIGURE_ORDER {
        let ds = ctx.dataset(kind);
        for part in &ds.parts {
            let grid = Grid2D::new(part.bbox, 48);
            let h = Histogram2D::from_points(grid, &part.points);
            println!("--- {} part {} ---", ds.name, part.name);
            println!("{}", ascii_density(&h, 48));
            let nz = h.values().iter().filter(|v| **v > 0.0).count();
            report.push_row(vec![
                ds.name.to_string(),
                part.name.clone(),
                part.points.len().to_string(),
                nz.to_string(),
            ]);
            // CSV sample of up to 2,000 points for external plotting.
            let mut sample = Report::new("points", &["x", "y"]);
            for p in part.points.iter().take(2000) {
                sample.push_row(vec![format!("{:.6}", p.x), format!("{:.6}", p.y)]);
            }
            let name = format!(
                "fig7_points_{}_{}",
                ds.name.to_lowercase().replace('-', "_"),
                part.name.to_lowercase()
            );
            sample.write_csv(&args.out, &name).expect("write csv");
        }
    }
    println!("{}", report.render());
    let path = report.write_csv(&args.out, "fig7_summary").expect("write csv");
    println!("csv: {}", path.display());
}
