//! Serve-while-ingesting evaluation: a [`dam_stream::QueryService`]
//! fields a per-epoch range-query workload over the moving two-foci
//! stream while epochs ingest, and the hierarchical oracle's
//! **constrained** (consistent pyramid) answers are compared against its
//! own **independent** raw levels at identical total ε — the same fit,
//! the same OUE randomness, the only difference being Hay-style
//! constrained inference. On this skewed (clustered) data consistency
//! must win on mean relative range error; the `consistency gain`
//! summary lines are the acceptance check.
//!
//! Per epoch the table reports, at each query selectivity: the
//! service's DAM-pyramid answers (`svc` — read from the atomically
//! published snapshot, node-cover walk), the constrained oracle (`hio`),
//! and the independent-levels ablation (`hio_raw`), each as mean
//! relative error against the true sliding-window range fractions
//! (floored at 1e-3 to keep tiny truths from dominating). `epoch_q`
//! counts the queries answered. Everything — stream, fits, workload — is
//! deterministic in `--seed` and bit-identical for any `--threads`.

use dam_core::{DamConfig, SamVariant};
use dam_data::synthetic::standard_normal;
use dam_eval::report::fmt4;
use dam_eval::runner::label_stream;
use dam_eval::{CliArgs, EvalContext, Report};
use dam_geo::rng::derived;
use dam_geo::{BoundingBox, Grid2D, Point};
use dam_range::{random_queries, HierarchicalOracle};
use dam_stream::{QueryService, StreamConfig};
use rand::Rng;

const D: u32 = 32;
const EPS: f64 = 3.5;
const BACKGROUND: f64 = 0.1;
const DRIFT_PER_EPOCH: f64 = 0.03;
const SELECTIVITIES: [f64; 3] = [0.125, 0.25, 0.5];
const QUERIES_PER_SEL: usize = 60;
/// Relative-error floor: a range whose truth is below this contributes
/// |err|/floor instead of exploding the mean.
const TRUTH_FLOOR: f64 = 1e-3;

/// The fig_stream two-foci drifting scenario (identical generator, so
/// figures are comparable across binaries).
fn epoch_points(n: usize, u: f64, rng: &mut impl Rng) -> Vec<Point> {
    let foci = [(0.15 + 0.70 * u, 0.25 + 0.30 * u), (0.85 - 0.70 * u, 0.75 - 0.30 * u)];
    (0..n)
        .map(|_| {
            if rng.gen::<f64>() < BACKGROUND {
                return Point::new(rng.gen(), rng.gen());
            }
            let (cx, cy) = foci[usize::from(rng.gen::<f64>() < 0.45)];
            Point::new(
                (cx + 0.05 * standard_normal(rng)).clamp(0.0, 1.0),
                (cy + 0.05 * standard_normal(rng)).clamp(0.0, 1.0),
            )
        })
        .collect()
}

fn main() {
    let args = CliArgs::parse();
    let ctx = EvalContext::from_args(&args);
    let epochs = args.epochs.unwrap_or(if args.fast { 6 } else { 16 });
    let window = args.window.unwrap_or(if args.fast { 3 } else { 5 }).min(epochs);
    let total_users = args.users.unwrap_or(30_000 * epochs);
    let per_epoch = (total_users / epochs).max(1);
    let grid = Grid2D::new(BoundingBox::unit(), D);

    let epoch_data: Vec<Vec<Point>> = (0..epochs)
        .map(|e| {
            let u = (e as f64 * DRIFT_PER_EPOCH).min(1.0);
            epoch_points(per_epoch, u, &mut derived(ctx.seed, 0x0F5E_4C00 + e as u64))
        })
        .collect();

    let dam =
        DamConfig { variant: SamVariant::Dam, backend: ctx.em_backend, ..DamConfig::dam(EPS) }
            .with_threads(ctx.threads);
    let service = QueryService::new(
        grid.clone(),
        StreamConfig::new(dam, window, label_stream(ctx.seed, "SVC")),
    );
    // Harness boundary: query/publish latency histograms get real
    // nanoseconds (the deterministic plane is clock-free).
    service.obs().set_clock(std::sync::Arc::new(dam_obs::WallClock::new()));

    let mut report = Report::new(
        &format!(
            "Query service + hierarchy consistency (d={D}, eps={EPS}, {per_epoch} users/epoch, \
             {epochs} epochs, window {window})"
        ),
        &["epoch", "sel", "epoch_q", "relerr_svc", "relerr_hio", "relerr_hio_raw"],
    );

    // Across-epoch accumulators for the summary lines.
    let mut sums = [0.0f64; 3];
    let mut n_queries = 0usize;
    for e in 0..epochs {
        service.ingest_epoch(&epoch_data[e]);
        let snap = service.snapshot();
        assert_eq!(snap.epoch, e + 1, "service must publish every epoch");

        // The true sliding window and one oracle fit on it (the oracle
        // is a *whole-window* protocol: same users as the service's
        // window, same total ε — both paths below read this one fit).
        let lo = (e + 1).saturating_sub(window);
        let window_points: Vec<Point> =
            epoch_data[lo..=e].iter().flat_map(|p| p.iter().copied()).collect();
        let mut fit_rng = derived(ctx.seed, 0x410F_1700 + e as u64);
        let oracle = HierarchicalOracle::fit(&window_points, &grid, EPS, &mut fit_rng);

        for sel in SELECTIVITIES {
            let queries = random_queries(
                D,
                QUERIES_PER_SEL,
                sel,
                &mut derived(ctx.seed, 0x9E_0000 + e as u64),
            );
            let mut err = [0.0f64; 3];
            for q in &queries {
                let truth = q.true_answer(&grid, &window_points);
                let floor = truth.max(TRUTH_FLOOR);
                let svc = snap.pyramid.range_sum(q.x0, q.y0, q.x1, q.y1);
                err[0] += (svc - truth).abs() / floor;
                err[1] += (oracle.answer(q) - truth).abs() / floor;
                err[2] += (oracle.answer_independent(q) - truth).abs() / floor;
            }
            let n = queries.len() as f64;
            for (acc, e) in sums.iter_mut().zip(err) {
                *acc += e;
            }
            n_queries += queries.len();
            report.push_row(vec![
                e.to_string(),
                format!("{sel}"),
                queries.len().to_string(),
                fmt4(err[0] / n),
                fmt4(err[1] / n),
                fmt4(err[2] / n),
            ]);
        }
    }
    println!("{}", report.render());
    let n = n_queries as f64;
    let (svc, hio, raw) = (sums[0] / n, sums[1] / n, sums[2] / n);
    println!(
        "mean relative range error over {n_queries} queries: svc {} | hio {} | hio_raw {}",
        fmt4(svc),
        fmt4(hio),
        fmt4(raw)
    );
    println!(
        "consistency gain: constrained inference cuts the independent-levels \
         error by {:.1}% at equal total eps",
        100.0 * (1.0 - hio / raw)
    );
    assert!(hio < raw, "constrained hierarchy ({hio:.4}) must beat independent levels ({raw:.4})");
    println!("{}", dam_eval::obs::health_footer("service", &service.health()));
    if let Some(path) = &args.metrics_out {
        dam_eval::obs::write_metrics(path, &[("service", service.obs())]).expect("write metrics");
        println!("metrics: {}", path.display());
    }
    let path = report.write_csv(&args.out, "fig_service").expect("write csv");
    println!("csv: {}", path.display());
}
