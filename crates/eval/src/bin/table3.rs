//! Table III: ranges and point counts of the evaluation datasets.
//! Regenerates the table from the (simulated) datasets and prints the
//! paper's reference values next to the measured ones.

use dam_data::DatasetKind;
use dam_eval::{CliArgs, EvalContext, Report};
use dam_geo::BoundingBox;

fn main() {
    let args = CliArgs::parse();
    let ctx = EvalContext::from_args(&args);
    let mut report = Report::new(
        "Table III: dataset ranges and point counts",
        &["dataset", "part", "x range", "y range", "points", "paper points"],
    );
    let paper_counts: &[(&str, &str, usize)] = &[
        ("Crime", "A", 216_595),
        ("Crime", "B", 173_552),
        ("Crime", "C", 69_068),
        ("NYC", "A", 10_561),
        ("NYC", "B", 42_195),
        ("NYC", "C", 9_186),
        ("Normal", "full", 300_000),
        ("SZipf", "full", 100_000),
        ("MNormal", "full", 300_000),
        ("Crime-full", "full", 101_146),
        ("NYC-full", "full", 446_110),
    ];
    let kinds = [
        DatasetKind::Crime,
        DatasetKind::Nyc,
        DatasetKind::Normal,
        DatasetKind::SZipf,
        DatasetKind::MNormal,
        DatasetKind::CrimeFull,
        DatasetKind::NycFull,
    ];
    for kind in kinds {
        let ds = ctx.dataset(kind);
        for part in &ds.parts {
            let BoundingBox { min_x, min_y, max_x, max_y } = part.bbox;
            let paper = paper_counts
                .iter()
                .find(|(n, p, _)| *n == ds.name && *p == part.name)
                .map(|(_, _, c)| c.to_string())
                .unwrap_or_else(|| "-".to_string());
            report.push_row(vec![
                ds.name.to_string(),
                part.name.clone(),
                format!("[{min_x:.2}, {max_x:.2}]"),
                format!("[{min_y:.2}, {max_y:.2}]"),
                part.points.len().to_string(),
                paper,
            ]);
        }
    }
    println!("{}", report.render());
    let path = report.write_csv(&args.out, "table3").expect("write csv");
    println!("csv: {}", path.display());
}
