//! Diagnostic: the Local-Privacy calibration chain for SEM-Geo-I.
//!
//! Prints, for a sweep of (ε, d): DAM's disk radius and exact LP, the
//! calibrated ε′, the implied subset size k, and the Monte-Carlo LP that
//! SEM achieves at ε′ — the full §VII-B unification pipeline in one
//! table. Useful when a SEM data point looks off in a figure.

use dam_baselines::SemGeoI;
use dam_core::grid::KernelKind;
use dam_core::kernel::DiscreteKernel;
use dam_core::radius::optimal_b_cells;
use dam_eval::mechspec::sem_epsilon;
use dam_eval::{CliArgs, EvalContext, Report};
use dam_geo::rng::derived;
use dam_privacy::lp::{lp_dam, lp_sem_monte_carlo};

fn main() {
    let args = CliArgs::parse();
    let ctx = EvalContext::from_args(&args);
    let mut report = Report::new(
        "SEM-Geo-I calibration probe",
        &["eps", "d", "b̂", "LP(DAM)", "eps'", "k", "LP(SEM@eps')"],
    );
    for &eps in &[0.7, 2.1, 3.5, 5.0] {
        for &d in &[2u32, 3, 4, 5, 10, 15] {
            let b = optimal_b_cells(eps, d);
            let kernel = DiscreteKernel::dam(eps, d, b, KernelKind::Shrunken);
            let target = lp_dam(&kernel);
            let eps_sem = sem_epsilon(eps, d, &ctx);
            let k = SemGeoI::new(eps_sem).resolve_k((d * d) as usize);
            let mut rng = derived(ctx.seed, 0xBEEF + d as u64);
            let achieved = lp_sem_monte_carlo(eps_sem, d, 2000, &mut rng);
            report.push_row(vec![
                format!("{eps}"),
                d.to_string(),
                b.to_string(),
                format!("{target:.4}"),
                format!("{eps_sem:.4}"),
                k.to_string(),
                format!("{achieved:.4}"),
            ]);
        }
    }
    println!("{}", report.render());
    let path = report.write_csv(&args.out, "calib_probe").expect("write csv");
    println!("csv: {}", path.display());
}
