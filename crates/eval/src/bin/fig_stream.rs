//! Continual observation: sliding-window estimation of a **moving**
//! spatial distribution (the regime the one-shot figures cannot touch).
//!
//! Two infection-style foci drift across the unit square over `--epochs`
//! epochs while users report privately each epoch; every SAM variant
//! maintains a [`dam_stream::StreamingEstimator`] whose window estimate
//! is read after every epoch. Per epoch and mechanism the table compares
//! the **warm-started** EM (the diffusion-forecast seed under the small
//! `EmParams::streaming` budget) against a **cold** uniform start under
//! the one-shot 150-iteration protocol on the *same* window counts:
//! iterations, PostProcess seconds, and window TV/W₂ against the true
//! sliding-window histogram. The two runs stop at deliberately
//! *different* points of the likelihood — the ML optimum overfits the
//! privacy noise, so the early-stopped warm path is expected to match
//! or beat the cold protocol's accuracy (the full-window summary lines
//! are the check) while the iteration ratio is the headline saving.
//!
//! `--epochs`/`--window` override the stream shape; ingestion and
//! estimates are bit-identical for any `--threads` value.
//!
//! `--inject "seed=7,corrupt=0.01,drop=0.1,delay=0.05,flip=0.02,\
//! nonfinite=0.001"` turns the run into a chaos experiment: the
//! [`dam_fault::FaultPlan`] corrupts reports before ingest, drops or
//! delays whole epochs, and poisons retained count planes — all from
//! pure decision streams, so a chaos run is also bit-identical for any
//! `--threads` value. The truth histogram stays the *clean* window, so
//! the TV/W₂ columns read directly as degradation under faults, and a
//! per-mechanism [`dam_stream::PipelineHealth`] footer reports what the
//! pipeline quarantined, sanitized, and recovered from.

use dam_core::{DamConfig, SamVariant};
use dam_data::synthetic::standard_normal;
use dam_eval::report::fmt4;
use dam_eval::runner::label_stream;
use dam_eval::{CliArgs, EvalContext, Report};
use dam_fault::{EpochFate, FaultPlan};
use dam_fo::em::EmParams;
use dam_geo::rng::derived;
use dam_geo::{BoundingBox, Grid2D, Histogram2D, Point};
use dam_stream::{StreamConfig, StreamingEstimator};
use dam_transport::metrics::w2;
use dam_transport::W2Solver;
use rand::Rng;

const D: u32 = 20;
const EPS: f64 = 3.5;
/// Fraction of each epoch's reports drawn from the uniform background.
const BACKGROUND: f64 = 0.1;
/// Focus drift per epoch as a fraction of the full trajectory — a fixed
/// *rate*, so `--epochs` changes how much of the path the stream covers,
/// not how fast the world moves (≈0.6 cells/epoch at d = 20).
const DRIFT_PER_EPOCH: f64 = 0.03;

/// One epoch of case locations: two foci sliding in opposite directions
/// across the square (progress `u ∈ [0, 1]` over the stream) plus a
/// uniform background.
fn epoch_points(n: usize, u: f64, rng: &mut impl Rng) -> Vec<Point> {
    let foci = [(0.15 + 0.70 * u, 0.25 + 0.30 * u), (0.85 - 0.70 * u, 0.75 - 0.30 * u)];
    (0..n)
        .map(|_| {
            if rng.gen::<f64>() < BACKGROUND {
                return Point::new(rng.gen(), rng.gen());
            }
            let (cx, cy) = foci[usize::from(rng.gen::<f64>() < 0.45)];
            Point::new(
                (cx + 0.05 * standard_normal(rng)).clamp(0.0, 1.0),
                (cy + 0.05 * standard_normal(rng)).clamp(0.0, 1.0),
            )
        })
        .collect()
}

/// Feeds one epoch into one stream under a fault plan: merges any batch
/// delayed from the previous epoch, applies the epoch fate and report
/// corruption, and poisons the retained count plane through the tamper
/// hook. `carry` holds a delayed batch between calls.
fn ingest_faulty(
    stream: &mut StreamingEstimator,
    plan: &FaultPlan,
    epoch: usize,
    points: &[Point],
    carry: &mut Vec<Point>,
) {
    let mut batch = std::mem::take(carry);
    match plan.epoch_fate(epoch) {
        EpochFate::Deliver => batch.extend_from_slice(points),
        EpochFate::Delay => *carry = points.to_vec(),
        EpochFate::Drop => {}
    }
    plan.corrupt_points(epoch, &mut batch);
    if batch.is_empty() {
        stream.ingest_missed_epoch();
    } else {
        stream.ingest_epoch_with(&batch, |e, plane| {
            plan.poison_counts(e, plane);
            plan.inject_nonfinite(e, plane);
        });
    }
}

fn main() {
    let args = CliArgs::parse();
    let ctx = EvalContext::from_args(&args);
    let plan =
        args.inject.as_deref().map(|spec| FaultPlan::parse(spec).unwrap_or_else(|e| panic!("{e}")));
    let epochs = args.epochs.unwrap_or(if args.fast { 8 } else { 24 });
    let window = args.window.unwrap_or(if args.fast { 4 } else { 6 }).min(epochs);
    let total_users = args.users.unwrap_or(20_000 * epochs);
    let per_epoch = (total_users / epochs).max(1);
    // The cold / first-window protocol: the one-shot figures' fixed
    // 150-iteration budget (plus the scale-free gain tolerance, which
    // rarely fires at this scale). Warm windows run the much smaller
    // `EmParams::streaming()` budget via `StreamConfig::new`.
    let em = EmParams { max_iters: 150, rel_tol: 1e-9, gain_tol: 1e-7 };
    let grid = Grid2D::new(BoundingBox::unit(), D);
    // W₂ through the grid-separable solver by default: the figure solves
    // O(epochs × mechanisms) transport problems, where the exact LP's
    // wall clock would dwarf the streaming pipeline under measurement
    // (`--w2-solver` still overrides; `auto` restores the size dispatch).
    let w2_ctx = if args.w2_solver == W2Solver::Auto {
        let mut grid_ctx = ctx.clone();
        grid_ctx.w2_solver = W2Solver::Grid;
        grid_ctx
    } else {
        ctx.clone()
    };
    let w2_method = w2_ctx.w2_method();

    // Shared data stream: every mechanism sees identical epochs.
    let epoch_data: Vec<Vec<Point>> = (0..epochs)
        .map(|e| {
            let u = (e as f64 * DRIFT_PER_EPOCH).min(1.0);
            epoch_points(per_epoch, u, &mut derived(ctx.seed, 0x0F16_5700 + e as u64))
        })
        .collect();

    let variants = [
        (SamVariant::Dam, "DAM"),
        (SamVariant::DamNonShrunken, "DAM-NS"),
        (SamVariant::Huem, "HUEM"),
    ];
    let mut streams: Vec<StreamingEstimator> = variants
        .iter()
        .map(|&(variant, label)| {
            let dam = DamConfig { variant, em, backend: ctx.em_backend, ..DamConfig::dam(EPS) }
                .with_threads(ctx.threads);
            let stream = StreamingEstimator::new(
                grid.clone(),
                StreamConfig::new(dam, window, label_stream(ctx.seed, label)),
            );
            // Harness boundary: timing-plane instruments get real
            // nanoseconds (the deterministic plane is clock-free).
            stream.obs().set_clock(std::sync::Arc::new(dam_obs::WallClock::new()));
            stream
        })
        .collect();

    let mut report = Report::new(
        &format!(
            "Streaming moving-foci (d={D}, eps={EPS}, {per_epoch} users/epoch, \
             {epochs} epochs, window {window})"
        ),
        &[
            "epoch",
            "mech",
            "win_users",
            "it_warm",
            "it_cold",
            "it_ratio",
            "secs_warm",
            "secs_cold",
            "tv_warm",
            "tv_cold",
            "w2_warm",
            "w2_cold",
        ],
    );

    let mut ratio_acc = vec![(0.0f64, 0usize); variants.len()];
    // Per-stream buffer for a batch the fault plan delayed one epoch.
    let mut carries: Vec<Vec<Point>> = vec![Vec::new(); variants.len()];
    // Steady-state accumulators (epochs with a full window): mean TV and
    // W₂ per mechanism, warm vs cold — the "no worse than recomputing"
    // check at a glance.
    let mut steady = vec![[0.0f64; 4]; variants.len()];
    let mut steady_n = 0usize;
    for e in 0..epochs {
        let lo = (e + 1).saturating_sub(window);
        let window_points: Vec<Point> =
            epoch_data[lo..=e].iter().flat_map(|p| p.iter().copied()).collect();
        let truth = Histogram2D::from_points(grid.clone(), &window_points).normalized();
        for (m, stream) in streams.iter_mut().enumerate() {
            match &plan {
                Some(plan) => ingest_faulty(stream, plan, e, &epoch_data[e], &mut carries[m]),
                None => {
                    stream.ingest_epoch(&epoch_data[e]);
                }
            }
            // Cold first: it must not touch the warm state it is the
            // baseline for.
            let t0 = dam_obs::Stopwatch::start(dam_eval::obs::wall());
            let cold = stream.estimate_window_cold();
            let secs_cold = t0.elapsed_secs();
            let t1 = dam_obs::Stopwatch::start(dam_eval::obs::wall());
            let warm = stream.estimate_window();
            let secs_warm = t1.elapsed_secs();
            let ratio = warm.em_iters as f64 / cold.em_iters.max(1) as f64;
            if warm.warm {
                ratio_acc[m].0 += ratio;
                ratio_acc[m].1 += 1;
            }
            let w2_warm = w2(&warm.histogram, &truth, w2_method).expect("w2");
            let w2_cold = w2(&cold.histogram, &truth, w2_method).expect("w2");
            let tv_warm = warm.histogram.tv_distance(&truth);
            let tv_cold = cold.histogram.tv_distance(&truth);
            if e + 1 >= window {
                steady[m][0] += tv_warm;
                steady[m][1] += tv_cold;
                steady[m][2] += w2_warm;
                steady[m][3] += w2_cold;
                if m == 0 {
                    steady_n += 1;
                }
            }
            report.push_row(vec![
                e.to_string(),
                variants[m].1.to_string(),
                format!("{}", window_points.len()),
                warm.em_iters.to_string(),
                cold.em_iters.to_string(),
                format!("{ratio:.3}"),
                format!("{secs_warm:.3}"),
                format!("{secs_cold:.3}"),
                fmt4(tv_warm),
                fmt4(tv_cold),
                fmt4(w2_warm),
                fmt4(w2_cold),
            ]);
        }
    }
    println!("{}", report.render());
    for (m, &(sum, n)) in ratio_acc.iter().enumerate() {
        if n > 0 {
            println!(
                "{}: warm-started windows used {:.1}% of the cold-start EM iterations \
                 (mean over {n} windows)",
                variants[m].1,
                100.0 * sum / n as f64
            );
        }
    }
    if steady_n > 0 {
        let n = steady_n as f64;
        for (m, s) in steady.iter().enumerate() {
            println!(
                "{}: full-window means over {steady_n} epochs — tv {:.4} (warm) vs {:.4} \
                 (cold), w2 {:.4} (warm) vs {:.4} (cold)",
                variants[m].1,
                s[0] / n,
                s[1] / n,
                s[2] / n,
                s[3] / n
            );
        }
    }
    if let Some(plan) = &plan {
        println!("fault plan: {}", plan.spec());
        for (m, stream) in streams.iter().enumerate() {
            println!("{}", dam_eval::obs::health_footer(variants[m].1, &stream.health()));
        }
    }
    if let Some(path) = &args.metrics_out {
        let sections: Vec<(&str, &dam_obs::Registry)> =
            variants.iter().zip(&streams).map(|(&(_, label), s)| (label, s.obs())).collect();
        dam_eval::obs::write_metrics(path, &sections).expect("write metrics");
        println!("metrics: {}", path.display());
    }
    let path = report.write_csv(&args.out, "fig_stream").expect("write csv");
    println!("csv: {}", path.display());
}
