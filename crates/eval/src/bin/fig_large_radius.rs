//! Large-radius regime: DAM at a fine grid (d = 64, ε = 5) with explicit
//! disk radii b̂ ∈ {4, 8, 16, 32} — the regime the spectral EM backend
//! exists for. For every radius the full pipeline (sharded reports + EM
//! PostProcess) runs once per requested backend on **identical noisy
//! reports**, so the table isolates the backend choice: the estimates
//! agree to FFT roundoff (column `tv_vs_auto`), while the EM wall time
//! shows the stencil↔FFT crossover end to end. `auto` additionally
//! reports which operator the cost model resolved to.
//!
//! Expected shape: `conv` time grows ~b̂², `fft` time stays ~flat in b̂
//! (the padded transform only doubles when `d + 2b̂` crosses a power of
//! two), and `auto` tracks the faster of the two at every radius.
//!
//! Error is reported as TV *and* W₂ per backend row: at d = 64 the
//! full-support histograms route `WassersteinMethod::Auto` to the
//! grid-separable Sinkhorn solver (`--w2-solver` overrides), so the
//! paper's headline metric is finally feasible in this regime — and
//! bit-identical for any `--threads` value, like everything else here.

use dam_core::{DamConfig, DamEstimator, EmBackend, SpatialEstimator};
use dam_data::DatasetKind;
use dam_eval::report::fmt4;
use dam_eval::{CliArgs, EvalContext, Report};
use dam_fo::em::EmParams;
use dam_geo::rng::derived;
use dam_geo::{Grid2D, Histogram2D};
use dam_transport::metrics::w2;

const D: u32 = 64;
const EPS: f64 = 5.0;

fn main() {
    let args = CliArgs::parse();
    let ctx = EvalContext::from_args(&args);
    let radii: &[u32] = if args.fast { &[4, 16, 32] } else { &[4, 8, 16, 32] };
    let em = EmParams { max_iters: if args.fast { 40 } else { 150 }, rel_tol: 0.0, gain_tol: 0.0 };

    let ds = ctx.dataset(DatasetKind::Normal);
    let part = &ds.parts[0];
    let points = ctx.capped_points(part);
    let grid = Grid2D::new(part.bbox, D);
    let truth = Histogram2D::from_points(grid.clone(), points).normalized();

    let mut report = Report::new(
        &format!(
            "Large-radius DAM (Normal, d={D}, eps={EPS}, {} users, {} EM iters)",
            points.len(),
            em.max_iters
        ),
        &["b_hat", "backend", "resolved", "secs", "tv_error", "tv_vs_auto", "w2", "w2_secs"],
    );
    let w2_method = ctx.w2_method();
    for &b_hat in radii {
        // The stencil at b̂ ≥ 16 is exactly the regime the FFT replaces;
        // keep the smoke fast by skipping what would dominate its wall
        // clock (the explicit `fft`/`auto` rows still cover the regime).
        let backends: &[EmBackend] = if args.fast && b_hat >= 16 {
            &[EmBackend::Auto, EmBackend::Fft]
        } else {
            &[EmBackend::Auto, EmBackend::Convolution, EmBackend::Fft]
        };
        let mut auto_est: Option<Histogram2D> = None;
        for &backend in backends {
            let config = DamConfig { b_hat: Some(b_hat), em, backend, ..DamConfig::dam(EPS) }
                .with_threads(ctx.threads);
            // Same stream per radius: every backend sees identical
            // reports, so rows differ only in the EM operator.
            let mut rng = derived(ctx.seed, 0x1A56_E000 + u64::from(b_hat));
            let watch = dam_obs::Stopwatch::start(dam_eval::obs::wall());
            let est = DamEstimator::new(config).estimate(points, &grid, &mut rng);
            let secs = watch.elapsed_secs();
            let tv = est.tv_distance(&truth);
            let tv_vs_auto = auto_est
                .as_ref()
                .map(|a| fmt4(est.tv_distance(a)))
                .unwrap_or_else(|| "-".to_string());
            let w2_watch = dam_obs::Stopwatch::start(dam_eval::obs::wall());
            let w = w2(&est, &truth, w2_method).expect("W2 computation failed");
            let w2_secs = w2_watch.elapsed_secs();
            if backend == EmBackend::Auto {
                auto_est = Some(est);
            }
            report.push_row(vec![
                b_hat.to_string(),
                backend.label().to_string(),
                backend.resolve(D, b_hat).label().to_string(),
                format!("{secs:.3}"),
                fmt4(tv),
                tv_vs_auto,
                fmt4(w),
                format!("{w2_secs:.3}"),
            ]);
        }
    }
    println!("{}", report.render());
    let path = report.write_csv(&args.out, "fig_large_radius").expect("write csv");
    println!("csv: {}", path.display());
}
