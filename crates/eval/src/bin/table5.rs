//! Table V: the trajectory-experiment parameter grid (defaults `*`).

use dam_eval::params::Table5;
use dam_eval::{CliArgs, Report};

fn main() {
    let args = CliArgs::parse();
    let mut report =
        Report::new("Table V: trajectory experimental settings", &["parameter", "values"]);
    report.push_row(vec![
        "discrete side length d".into(),
        Table5::D_VALUES
            .iter()
            .map(|d| if *d == Table5::D_DEFAULT { format!("{d}*") } else { d.to_string() })
            .collect::<Vec<_>>()
            .join(", "),
    ]);
    report.push_row(vec![
        "privacy budget eps".into(),
        Table5::EPS_VALUES
            .iter()
            .map(|e| if *e == Table5::EPS_DEFAULT { format!("{e}*") } else { format!("{e}") })
            .collect::<Vec<_>>()
            .join(", "),
    ]);
    report.push_row(vec!["trajectories".into(), Table5::N_TRAJS.to_string()]);
    report.push_row(vec![
        "trajectory length".into(),
        format!("{}..{}", Table5::LEN_RANGE.0, Table5::LEN_RANGE.1),
    ]);
    report.push_row(vec!["base grid".into(), format!("{0} x {0}", Table5::BASE_GRID)]);
    println!("{}", report.render());
    let path = report.write_csv(&args.out, "table5").expect("write csv");
    println!("csv: {}", path.display());
}
