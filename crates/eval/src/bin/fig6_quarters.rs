//! Figure 6: the quarter decomposition of the disk border for
//! b̂ = 1..7 — rendered as ASCII, with the Theorem VI.3/VI.4 closed-form
//! counts printed next to geometric enumeration. Regenerates the geometry
//! figure that motivates the shrinkage bookkeeping.

use dam_core::grid::{
    classify_offset, shrunken_area, strict_quarter_mixed_cells, strict_quarter_pure_count,
    CellClass,
};
use dam_eval::{CliArgs, Report};

fn main() {
    let args = CliArgs::parse();
    let mut report = Report::new(
        "Figure 6: strict-quarter cell counts (closed form vs enumeration)",
        &["b̂", "mixed cells (x,y)", "|E^(m)|", "|E^(p)|", "Σ shrunken area"],
    );
    for b in 1..=7u32 {
        println!("b̂ = {b}:");
        // ASCII map of the first quadrant: # pure high, + mixed, . pure low.
        for y in (0..=b as i64 + 1).rev() {
            let mut line = String::from("  ");
            for x in 0..=b as i64 + 1 {
                line.push(match classify_offset(x, y, b) {
                    CellClass::PureHigh => '#',
                    CellClass::Mixed => '+',
                    CellClass::PureLow => '.',
                });
                line.push(' ');
            }
            println!("{line}");
        }
        println!();
        let mixed = strict_quarter_mixed_cells(b);
        let area: f64 = mixed.iter().map(|&(x, y)| shrunken_area(x as i64, y as i64, b)).sum();
        report.push_row(vec![
            b.to_string(),
            mixed.iter().map(|&(x, y)| format!("({x},{y})")).collect::<Vec<_>>().join(" "),
            mixed.len().to_string(),
            strict_quarter_pure_count(b).to_string(),
            format!("{:.4}", area.max(0.0)),
        ]);
    }
    println!("{}", report.render());
    let path = report.write_csv(&args.out, "fig6_quarters").expect("write csv");
    println!("csv: {}", path.display());
}
