//! Table IV: the experimental parameter grid (defaults marked `*`).

use dam_eval::params::Table4;
use dam_eval::{CliArgs, Report};

fn main() {
    let args = CliArgs::parse();
    let mut report = Report::new("Table IV: experimental settings", &["parameter", "values"]);
    report.push_row(vec![
        "norm distance b".into(),
        Table4::B_FACTORS
            .iter()
            .map(|f| if *f == 1.0 { "b̌*".to_string() } else { format!("{f:.2}b̌") })
            .collect::<Vec<_>>()
            .join(", "),
    ]);
    let mut ds: Vec<String> = Table4::D_SMALL.iter().map(|d| d.to_string()).collect();
    for d in Table4::D_LARGE {
        if !Table4::D_SMALL.contains(&d) {
            ds.push(if d == Table4::D_DEFAULT { format!("{d}*") } else { d.to_string() });
        }
    }
    report.push_row(vec!["discrete side length d".into(), ds.join(", ")]);
    let mut eps: Vec<String> = Table4::EPS_SMALL
        .iter()
        .map(|e| if *e == Table4::EPS_DEFAULT { format!("{e}*") } else { format!("{e}") })
        .collect();
    eps.extend(Table4::EPS_LARGE.iter().map(|e| format!("{e}")));
    report.push_row(vec!["privacy budget eps".into(), eps.join(", ")]);
    println!("{}", report.render());
    let path = report.write_csv(&args.out, "table4").expect("write csv");
    println!("csv: {}", path.display());
}
