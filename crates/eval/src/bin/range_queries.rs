//! Range-query extension experiment (the paper's §II closing claim that
//! DAM "can combine with the methods of HIO, HDG and AHEAD to further
//! improve the accuracy in private range query").
//!
//! Compares ε-LDP range-query engines on the Crime dataset across query
//! selectivities: (1) DAM estimate read through the pyramid-backed
//! [`dam_range::RangeIndex`], (2) the hierarchical HIO-style oracle with
//! constrained inference, (3) the same oracle's raw independent levels
//! (the pre-consistency ablation), (4) CFO estimate + cell summation.
//! Metric: mean absolute error of the range fraction over 200 random
//! queries per selectivity.

use dam_baselines::{CfoEstimator, CfoFlavor};
use dam_core::{DamConfig, DamEstimator, SpatialEstimator};
use dam_data::DatasetKind;
use dam_eval::{CliArgs, EvalContext, Report};
use dam_geo::rng::derived;
use dam_geo::Grid2D;
use dam_range::{answer_from_histogram, random_queries, HierarchicalOracle, RangeIndex};

fn main() {
    let args = CliArgs::parse();
    let ctx = EvalContext::from_args(&args);
    let eps = 2.0;
    let d = 16; // power of two so HIO's quadtree bottoms out at cells
    let ds = ctx.dataset(DatasetKind::Crime);
    let part = &ds.parts[1];
    let points = ctx.capped_points(part);
    let grid = Grid2D::new(part.bbox, d);
    eprintln!("{} points, grid {d}x{d}, eps = {eps}", points.len());

    // Fit each engine once.
    let mut rng = derived(ctx.seed, 0x7A4E);
    let dam_est = DamEstimator::new(DamConfig::dam(eps)).estimate(points, &grid, &mut rng);
    let dam_idx = RangeIndex::new(&dam_est);
    let cfo_est = CfoEstimator::new(eps, CfoFlavor::Oue).estimate(points, &grid, &mut rng);
    let hio = HierarchicalOracle::fit(points, &grid, eps, &mut rng);

    let mut report = Report::new(
        "Range queries: mean |error| of range fraction (Crime part B, eps=2, d=16)",
        &["selectivity", "queries", "DAM+pyr", "HIO", "HIO-raw", "CFO+sum"],
    );
    for sel in [0.125, 0.25, 0.5, 0.75] {
        let queries = random_queries(d, 200, sel, &mut rng);
        let (mut e_dam, mut e_hio, mut e_raw, mut e_cfo) = (0.0, 0.0, 0.0, 0.0);
        for q in &queries {
            let truth = q.true_answer(&grid, points);
            e_dam += (dam_idx.answer(q) - truth).abs();
            e_hio += (hio.answer(q) - truth).abs();
            e_raw += (hio.answer_independent(q) - truth).abs();
            e_cfo += (answer_from_histogram(&cfo_est, q) - truth).abs();
        }
        let n = queries.len() as f64;
        report.push_row(vec![
            format!("{sel}"),
            queries.len().to_string(),
            format!("{:.5}", e_dam / n),
            format!("{:.5}", e_hio / n),
            format!("{:.5}", e_raw / n),
            format!("{:.5}", e_cfo / n),
        ]);
    }
    println!("{}", report.render());
    let path = report.write_csv(&args.out, "range_queries").expect("write csv");
    println!("csv: {}", path.display());
}
