//! Property-based tests of the trajectory substrate.

use dam_geo::{BoundingBox, Grid2D, Point};
use dam_trajectory::traj::{flatten, sample_workload, Trajectory};
use proptest::prelude::*;
use rand::SeedableRng;

fn base_points(n: usize, seed: u64) -> Vec<Point> {
    use rand::Rng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n).map(|_| Point::new(rng.gen(), rng.gen())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn workload_respects_shape_for_any_config(
        seed in 0u64..1000,
        n_trajs in 1usize..20,
        lo in 1usize..10,
        extra in 0usize..30,
        d in 4u32..40,
    ) {
        let pts = base_points(500, seed);
        let grid = Grid2D::new(BoundingBox::unit(), d);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xABCD);
        let trajs = sample_workload(&pts, &grid, n_trajs, (lo, lo + extra), &mut rng);
        prop_assert_eq!(trajs.len(), n_trajs);
        for t in &trajs {
            prop_assert!(t.len() >= lo && t.len() <= lo + extra);
            // Every step lands in an 8-neighbouring cell.
            for w in t.points.windows(2) {
                let a = grid.cell_of(w[0]);
                let b = grid.cell_of(w[1]);
                prop_assert!((a.ix as i64 - b.ix as i64).abs() <= 1);
                prop_assert!((a.iy as i64 - b.iy as i64).abs() <= 1);
            }
            // All points stay in the domain.
            for p in &t.points {
                prop_assert!(grid.bbox().contains(*p));
            }
        }
    }

    #[test]
    fn flatten_length_is_sum_of_lengths(lens in prop::collection::vec(1usize..30, 1..10)) {
        let trajs: Vec<Trajectory> = lens
            .iter()
            .map(|&l| Trajectory {
                points: (0..l).map(|k| Point::new(k as f64, 0.0)).collect(),
            })
            .collect();
        let total: usize = lens.iter().sum();
        prop_assert_eq!(flatten(&trajs).len(), total);
    }

    #[test]
    fn workload_is_deterministic_in_the_seed(seed in 0u64..500) {
        let pts = base_points(300, 9);
        let grid = Grid2D::new(BoundingBox::unit(), 12);
        let run = |s: u64| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(s);
            sample_workload(&pts, &grid, 5, (2, 10), &mut rng)
        };
        prop_assert_eq!(run(seed), run(seed));
    }
}
