//! Trajectories and the Appendix-D workload sampler.

use dam_fo::alias::AliasTable;
use dam_geo::{CellIndex, Grid2D, Point};
use rand::Rng;

/// An ordered sequence of visited points.
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    /// The visited points, in order.
    pub points: Vec<Point>,
}

impl Trajectory {
    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the trajectory has no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// Flattens trajectories into one point multiset (the reduction used to
/// compare trajectory mechanisms against DAM).
pub fn flatten(trajs: &[Trajectory]) -> Vec<Point> {
    trajs.iter().flat_map(|t| t.points.iter().copied()).collect()
}

/// The paper's trajectory workload (Appendix D): divide the base domain
/// into a `base_d × base_d` grid (300×300 in the paper), then sample
/// `n_trajs` trajectories whose start cells are drawn proportionally to
/// point density and which walk to 8-neighbours with probability
/// proportional to neighbouring point counts; each visited cell
/// contributes one uniformly chosen point within it.
pub fn sample_workload(
    base_points: &[Point],
    grid: &Grid2D,
    n_trajs: usize,
    len_range: (usize, usize),
    rng: &mut (impl Rng + ?Sized),
) -> Vec<Trajectory> {
    assert!(!base_points.is_empty(), "need base points to sample a workload");
    assert!(len_range.0 >= 1 && len_range.0 <= len_range.1, "bad length range");
    let d = grid.d() as i64;
    let n_cells = grid.n_cells();

    // Cell → indices of points inside it.
    let mut members: Vec<Vec<u32>> = vec![Vec::new(); n_cells];
    for (i, &p) in base_points.iter().enumerate() {
        members[grid.flat(grid.cell_of(p))].push(i as u32);
    }
    let counts: Vec<f64> = members.iter().map(|m| m.len() as f64).collect();
    let start_alias = AliasTable::new(&counts);

    // Takes a pre-drawn uniform variate so the helper stays independent of
    // the (possibly unsized) RNG type.
    let pick_point = |cell: usize, u: f64| -> Point {
        let m = &members[cell];
        if m.is_empty() {
            grid.cell_center(grid.unflat(cell))
        } else {
            let idx = ((u * m.len() as f64) as usize).min(m.len() - 1);
            base_points[m[idx] as usize]
        }
    };

    let mut out = Vec::with_capacity(n_trajs);
    for _ in 0..n_trajs {
        let len = rng.gen_range(len_range.0..=len_range.1);
        let mut cell = grid.unflat(start_alias.sample(rng));
        let mut pts = Vec::with_capacity(len);
        pts.push(pick_point(grid.flat(cell), rng.gen()));
        while pts.len() < len {
            // 8-neighbourhood weighted by point counts; when all empty,
            // uniform over in-grid neighbours.
            let mut neigh: Vec<(CellIndex, f64)> = Vec::with_capacity(8);
            for dy in -1..=1i64 {
                for dx in -1..=1i64 {
                    if dx == 0 && dy == 0 {
                        continue;
                    }
                    let (nx, ny) = (cell.ix as i64 + dx, cell.iy as i64 + dy);
                    if nx < 0 || ny < 0 || nx >= d || ny >= d {
                        continue;
                    }
                    let c = CellIndex::new(nx as u32, ny as u32);
                    neigh.push((c, counts[grid.flat(c)]));
                }
            }
            let total: f64 = neigh.iter().map(|n| n.1).sum();
            let next = if total > 0.0 {
                let mut t = rng.gen::<f64>() * total;
                let mut chosen = neigh[neigh.len() - 1].0;
                for &(c, w) in &neigh {
                    if t < w {
                        chosen = c;
                        break;
                    }
                    t -= w;
                }
                chosen
            } else {
                neigh[rng.gen_range(0..neigh.len())].0
            };
            cell = next;
            pts.push(pick_point(grid.flat(cell), rng.gen()));
        }
        out.push(Trajectory { points: pts });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dam_geo::BoundingBox;
    use rand::SeedableRng;

    fn base() -> (Vec<Point>, Grid2D) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(170);
        let pts: Vec<Point> =
            (0..5_000).map(|_| Point::new(rng.gen::<f64>(), rng.gen::<f64>())).collect();
        (pts, Grid2D::new(BoundingBox::unit(), 30))
    }

    #[test]
    fn workload_has_requested_shape() {
        let (pts, grid) = base();
        let mut rng = rand::rngs::StdRng::seed_from_u64(171);
        let trajs = sample_workload(&pts, &grid, 50, (2, 20), &mut rng);
        assert_eq!(trajs.len(), 50);
        for t in &trajs {
            assert!(t.len() >= 2 && t.len() <= 20);
        }
    }

    #[test]
    fn steps_are_to_adjacent_cells() {
        let (pts, grid) = base();
        let mut rng = rand::rngs::StdRng::seed_from_u64(172);
        let trajs = sample_workload(&pts, &grid, 20, (5, 30), &mut rng);
        for t in &trajs {
            for w in t.points.windows(2) {
                let a = grid.cell_of(w[0]);
                let b = grid.cell_of(w[1]);
                let (dx, dy) =
                    ((a.ix as i64 - b.ix as i64).abs(), (a.iy as i64 - b.iy as i64).abs());
                assert!(dx <= 1 && dy <= 1, "non-adjacent step {a:?} → {b:?}");
            }
        }
    }

    #[test]
    fn starts_follow_density() {
        // All base mass in one corner: every trajectory must start there.
        let pts = vec![Point::new(0.05, 0.05); 1000];
        let grid = Grid2D::new(BoundingBox::unit(), 10);
        let mut rng = rand::rngs::StdRng::seed_from_u64(173);
        let trajs = sample_workload(&pts, &grid, 20, (2, 5), &mut rng);
        for t in &trajs {
            let c = grid.cell_of(t.points[0]);
            assert_eq!(c, CellIndex::new(0, 0));
        }
    }

    #[test]
    fn flatten_concatenates() {
        let t1 = Trajectory { points: vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)] };
        let t2 = Trajectory { points: vec![Point::new(0.5, 0.5)] };
        assert_eq!(flatten(&[t1, t2]).len(), 3);
    }
}
