//! PivotTrace (Zhang et al., VLDB 2023 \[30\]) — pivot-based trajectory
//! collection under ε-LDP.
//!
//! Each user selects a small set of evenly spaced *pivot* points from
//! their trajectory (always including the endpoints), perturbs each pivot
//! cell independently with a bounded exponential mechanism over the grid
//! (`Pr[c|v] ∝ exp(−(ε_p/2)·dis(c, v)/diam)`, which is exactly
//! ε_p-LDP because the normalised utility has range 1), and submits the
//! perturbed pivots plus the (bucketed) original length. The analyst
//! reconstructs each trajectory by interpolating linearly between the
//! perturbed pivots. Budget: with `m` pivots each perturbation runs at
//! `ε/m` by sequential composition.

use crate::mechanism::TrajectoryMechanism;
use crate::traj::Trajectory;
use dam_fo::alias::AliasTable;
#[cfg(test)]
use dam_geo::Point;
use dam_geo::{CellIndex, Grid2D, Histogram2D};
use rand::RngCore;

/// The PivotTrace estimator.
#[derive(Debug, Clone, Copy)]
pub struct PivotTrace {
    eps: f64,
    /// Maximum number of pivots per trajectory.
    max_pivots: usize,
}

impl PivotTrace {
    /// Creates the mechanism with the reference configuration (at most 5
    /// pivots).
    pub fn new(eps: f64) -> Self {
        assert!(eps > 0.0 && eps.is_finite(), "privacy budget must be positive");
        Self { eps, max_pivots: 5 }
    }

    /// Overrides the pivot budget.
    pub fn with_max_pivots(mut self, m: usize) -> Self {
        assert!(m >= 2, "need at least the two endpoint pivots");
        self.max_pivots = m;
        self
    }

    /// Evenly spaced pivot indices including both endpoints.
    fn pivot_indices(len: usize, max_pivots: usize) -> Vec<usize> {
        if len <= max_pivots {
            return (0..len).collect();
        }
        (0..max_pivots)
            .map(|k| (k as f64 / (max_pivots - 1) as f64 * (len - 1) as f64).round() as usize)
            .collect()
    }

    /// Builds the bounded-exponential-mechanism sampler for one true cell.
    fn pivot_sampler(grid: &Grid2D, v: CellIndex, eps_p: f64) -> AliasTable {
        let d = grid.d() as f64;
        let diam = (d * d + d * d).sqrt();
        let weights: Vec<f64> = (0..grid.n_cells())
            .map(|i| {
                let c = grid.unflat(i);
                let dist = (c.ix as f64 - v.ix as f64).hypot(c.iy as f64 - v.iy as f64);
                (-(eps_p / 2.0) * dist / diam).exp()
            })
            .collect();
        AliasTable::new(&weights)
    }

    /// Grid cells along the straight segment between two cells, inclusive,
    /// with `steps` samples (a supercover interpolation).
    fn interpolate(a: CellIndex, b: CellIndex, steps: usize) -> Vec<CellIndex> {
        let steps = steps.max(1);
        (0..=steps)
            .map(|k| {
                let t = k as f64 / steps as f64;
                let x = a.ix as f64 + t * (b.ix as f64 - a.ix as f64);
                let y = a.iy as f64 + t * (b.iy as f64 - a.iy as f64);
                CellIndex::new(x.round() as u32, y.round() as u32)
            })
            .collect()
    }
}

impl TrajectoryMechanism for PivotTrace {
    fn name(&self) -> String {
        "PivotTrace".to_string()
    }

    fn estimate_distribution(
        &self,
        trajs: &[Trajectory],
        grid: &Grid2D,
        rng: &mut dyn RngCore,
    ) -> Histogram2D {
        assert!(!trajs.is_empty(), "cannot estimate from zero trajectories");
        let mut hist = Histogram2D::zeros(grid.clone());
        // Cache samplers per (cell, pivot-count) — the alias table is the
        // dominant cost and trajectories revisit cells heavily. Ordered
        // map, so any future iteration over the cache (stats, eviction)
        // is deterministic by construction.
        let mut cache: std::collections::BTreeMap<(u32, u32, usize), AliasTable> =
            std::collections::BTreeMap::new();

        for t in trajs {
            let idx = Self::pivot_indices(t.len(), self.max_pivots);
            let m = idx.len();
            let eps_p = self.eps / m as f64;
            // Perturb each pivot cell.
            let noisy: Vec<CellIndex> = idx
                .iter()
                .map(|&i| {
                    let v = grid.cell_of(t.points[i]);
                    let sampler = cache
                        .entry((v.ix, v.iy, m))
                        .or_insert_with(|| Self::pivot_sampler(grid, v, eps_p));
                    grid.unflat(sampler.sample(rng))
                })
                .collect();
            // Reconstruct: interpolate between consecutive noisy pivots,
            // spending as many samples as the original segment length so
            // point counts are preserved.
            for (seg, w) in noisy.windows(2).enumerate() {
                let seg_len = idx[seg + 1] - idx[seg];
                for c in Self::interpolate(w[0], w[1], seg_len) {
                    hist.add_cell(c);
                }
            }
            if noisy.len() == 1 {
                hist.add_cell(noisy[0]);
            }
        }
        hist.normalized()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn pivot_indices_include_endpoints() {
        let idx = PivotTrace::pivot_indices(100, 5);
        assert_eq!(idx.len(), 5);
        assert_eq!(idx[0], 0);
        assert_eq!(*idx.last().unwrap(), 99);
        // Short trajectories keep every point.
        assert_eq!(PivotTrace::pivot_indices(3, 5), vec![0, 1, 2]);
    }

    #[test]
    fn interpolation_connects_cells() {
        let path = PivotTrace::interpolate(CellIndex::new(0, 0), CellIndex::new(4, 2), 4);
        assert_eq!(path.len(), 5);
        assert_eq!(path[0], CellIndex::new(0, 0));
        assert_eq!(path[4], CellIndex::new(4, 2));
    }

    #[test]
    fn pivot_mechanism_is_ldp_bounded() {
        // Ratio of sampling probabilities for two different true cells is
        // at most e^{eps_p} by construction; verify on the weight level.
        use dam_geo::BoundingBox;
        let grid = Grid2D::new(BoundingBox::unit(), 6);
        let eps_p = 1.0;
        let d = 6.0f64;
        let diam = (2.0 * d * d).sqrt();
        let w = |v: CellIndex, c: CellIndex| {
            let dist = (c.ix as f64 - v.ix as f64).hypot(c.iy as f64 - v.iy as f64);
            (-(eps_p / 2.0) * dist / diam).exp()
        };
        let (v1, v2) = (CellIndex::new(0, 0), CellIndex::new(5, 5));
        let z1: f64 = grid.cells().map(|c| w(v1, c)).sum();
        let z2: f64 = grid.cells().map(|c| w(v2, c)).sum();
        for c in grid.cells() {
            let ratio = (w(v1, c) / z1) / (w(v2, c) / z2);
            assert!(ratio <= eps_p.exp() * (1.0 + 1e-9), "cell {c:?}: ratio {ratio}");
        }
    }

    #[test]
    fn estimate_is_valid_distribution() {
        use dam_geo::BoundingBox;
        let mut rng = rand::rngs::StdRng::seed_from_u64(200);
        let trajs: Vec<Trajectory> = (0..100)
            .map(|i| Trajectory {
                points: (0..30)
                    .map(|j| {
                        Point::new(
                            (0.2 + 0.02 * j as f64).min(0.99),
                            (0.1 + 0.005 * i as f64).min(0.99),
                        )
                    })
                    .collect(),
            })
            .collect();
        let grid = Grid2D::new(BoundingBox::unit(), 8);
        let est = PivotTrace::new(1.5).estimate_distribution(&trajs, &grid, &mut rng);
        assert!((est.total() - 1.0).abs() < 1e-9);
        assert!(est.values().iter().all(|&v| v >= 0.0));
    }
}
