//! # dam-trajectory — trajectory workloads and mechanisms (Appendix D)
//!
//! The paper's final experiment compares DAM against two locally private
//! *trajectory* mechanisms — LDPTrace \[29\] and PivotTrace \[30\] — on how
//! well the point distribution induced by synthesized/reconstructed
//! trajectories matches the true one (the seven-step protocol of
//! Appendix D). This crate provides:
//!
//! * [`traj`] — the trajectory type and the paper's workload sampler
//!   (1,000 trajectories of length 2–200, random-walked over a 300×300
//!   density grid);
//! * [`ldptrace`] — a faithful reproduction of LDPTrace's grid Markov
//!   model: OUE frequency oracles for start cells, lengths and
//!   neighbour transitions (ε/3 each), followed by random-walk synthesis;
//! * [`pivottrace`] — PivotTrace-style pivot perturbation: evenly spaced
//!   pivots, each randomized by a bounded exponential mechanism, with
//!   linear interpolation between perturbed pivots;
//! * [`mechanism`] — the [`mechanism::TrajectoryMechanism`] trait and the
//!   DAM adapter that treats every trajectory point as a user report.

#![forbid(unsafe_code)]

pub mod ldptrace;
pub mod mechanism;
pub mod pivottrace;
pub mod traj;

pub use ldptrace::LdpTrace;
pub use mechanism::{DamOnPoints, TrajectoryMechanism};
pub use pivottrace::PivotTrace;
pub use traj::{sample_workload, Trajectory};
