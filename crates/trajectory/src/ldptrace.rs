//! LDPTrace (Du et al., VLDB 2023 \[29\]) — grid Markov trajectory
//! synthesis under ε-LDP.
//!
//! Each user holds one trajectory and splits the budget ε into three
//! equal parts, reporting through OUE frequency oracles:
//!
//! 1. the **start cell** (domain: the `d²` grid cells),
//! 2. the **trajectory length bucket** (geometric buckets over 2–200),
//! 3. one uniformly sampled **neighbour transition** `(cell, direction)`
//!    (domain: `d² × 8`).
//!
//! The analyst assembles a first-order Markov model (start distribution,
//! per-cell direction distribution, length distribution) and samples a
//! synthetic trajectory database from it; the synthetic point cloud is the
//! estimate. Spending most of the budget on *directions* rather than raw
//! density is exactly why its point-distribution W₂ trails DAM in
//! Figure 14.

use crate::mechanism::TrajectoryMechanism;
use crate::traj::Trajectory;
use dam_fo::Oue;
use dam_geo::{CellIndex, Grid2D, Histogram2D};
use rand::{Rng, RngCore};

/// Geometric length-bucket edges covering the paper's 2–200 range.
const LEN_EDGES: [usize; 8] = [2, 4, 8, 16, 32, 64, 128, 200];

/// The nine step directions (dx, dy), including "stay" for degenerate
/// segments that do not change cell.
const DIRS: [(i64, i64); 9] =
    [(1, 0), (1, 1), (0, 1), (-1, 1), (-1, 0), (-1, -1), (0, -1), (1, -1), (0, 0)];

/// The LDPTrace estimator.
#[derive(Debug, Clone, Copy)]
pub struct LdpTrace {
    eps: f64,
    /// How many synthetic trajectories to sample (defaults to the input
    /// database size).
    synth_factor: f64,
}

impl LdpTrace {
    /// Creates the mechanism.
    pub fn new(eps: f64) -> Self {
        assert!(eps > 0.0 && eps.is_finite(), "privacy budget must be positive");
        Self { eps, synth_factor: 1.0 }
    }

    /// Length bucket index for a trajectory length.
    fn len_bucket(len: usize) -> usize {
        LEN_EDGES.iter().rposition(|&e| len >= e).unwrap_or(0)
    }

    /// A representative length drawn uniformly from a bucket.
    fn sample_len(bucket: usize, rng: &mut (impl Rng + ?Sized)) -> usize {
        let lo = LEN_EDGES[bucket];
        let hi = if bucket + 1 < LEN_EDGES.len() { LEN_EDGES[bucket + 1] } else { 201 };
        rng.gen_range(lo..hi.max(lo + 1))
    }

    /// Clamps unbiased FO estimates onto the simplex.
    fn clamp_normalize(v: &mut [f64]) {
        let mut total = 0.0;
        for x in v.iter_mut() {
            *x = x.max(0.0);
            total += *x;
        }
        if total > 0.0 {
            for x in v.iter_mut() {
                *x /= total;
            }
        } else {
            let u = 1.0 / v.len() as f64;
            v.fill(u);
        }
    }
}

impl TrajectoryMechanism for LdpTrace {
    fn name(&self) -> String {
        "LDPTrace".to_string()
    }

    fn estimate_distribution(
        &self,
        trajs: &[Trajectory],
        grid: &Grid2D,
        rng: &mut dyn RngCore,
    ) -> Histogram2D {
        assert!(!trajs.is_empty(), "cannot estimate from zero trajectories");
        let d = grid.d() as usize;
        let n_cells = d * d;
        let eps_part = self.eps / 3.0;
        let n_users = trajs.len();

        // Oracles. OUE needs at least two categories; d = 1 degenerates.
        if n_cells < 2 {
            return Histogram2D::from_values(grid.clone(), vec![1.0]);
        }
        let start_fo = Oue::new(n_cells, eps_part);
        let len_fo = Oue::new(LEN_EDGES.len(), eps_part);
        let trans_fo = Oue::new(n_cells * DIRS.len(), eps_part);

        let mut start_support = vec![0.0f64; n_cells];
        let mut len_support = vec![0.0f64; LEN_EDGES.len()];
        let mut trans_support = vec![0.0f64; n_cells * DIRS.len()];
        let mut trans_reporters = 0usize;

        for t in trajs {
            let start = grid.cell_of(t.points[0]);
            start_fo.accumulate(&start_fo.perturb(grid.flat(start), rng), &mut start_support);
            len_fo.accumulate(&len_fo.perturb(Self::len_bucket(t.len()), rng), &mut len_support);
            // One uniformly sampled adjacent transition per user.
            if t.len() >= 2 {
                let i = rng.gen_range(0..t.len() - 1);
                let a = grid.cell_of(t.points[i]);
                let b = grid.cell_of(t.points[i + 1]);
                let (dx, dy) = (
                    (b.ix as i64 - a.ix as i64).clamp(-1, 1),
                    (b.iy as i64 - a.iy as i64).clamp(-1, 1),
                );
                let dir = DIRS.iter().position(|&v| v == (dx, dy)).unwrap_or(0);
                let item = grid.flat(a) * DIRS.len() + dir;
                trans_fo.accumulate(&trans_fo.perturb(item, rng), &mut trans_support);
                trans_reporters += 1;
            }
        }

        let mut f_start = start_fo.estimate(&start_support, n_users);
        Self::clamp_normalize(&mut f_start);
        let mut f_len = len_fo.estimate(&len_support, n_users);
        Self::clamp_normalize(&mut f_len);
        let mut f_trans = trans_fo.estimate(&trans_support, trans_reporters.max(1));
        // Per-cell direction distributions.
        let nd = DIRS.len();
        let mut dir_dist = vec![[1.0f64 / 9.0; 9]; n_cells];
        for (cell, dist) in dir_dist.iter_mut().enumerate() {
            let slice = &mut f_trans[cell * nd..(cell + 1) * nd];
            let total: f64 = slice.iter().map(|x| x.max(0.0)).sum();
            if total > 1e-9 {
                for (k, v) in slice.iter().enumerate() {
                    dist[k] = v.max(0.0) / total;
                }
            }
        }

        // Synthesis: sample a synthetic trajectory database and count its
        // points.
        let n_synth = ((n_users as f64) * self.synth_factor).round().max(1.0) as usize;
        let mut hist = Histogram2D::zeros(grid.clone());
        let sample_categorical = |w: &[f64], rng: &mut dyn RngCore| -> usize {
            let mut t = rand::Rng::gen::<f64>(rng);
            for (i, &x) in w.iter().enumerate() {
                if t < x {
                    return i;
                }
                t -= x;
            }
            w.len() - 1
        };
        for _ in 0..n_synth {
            let len_bucket = sample_categorical(&f_len, rng);
            let len = Self::sample_len(len_bucket, rng);
            let mut cell = grid.unflat(sample_categorical(&f_start, rng));
            hist.add_cell(cell);
            for _ in 1..len {
                let dist = &dir_dist[grid.flat(cell)];
                // Mask directions leaving the grid.
                let mut w = [0.0f64; 9];
                let mut total = 0.0;
                for (k, &(dx, dy)) in DIRS.iter().enumerate() {
                    let (nx, ny) = (cell.ix as i64 + dx, cell.iy as i64 + dy);
                    if nx >= 0 && ny >= 0 && nx < d as i64 && ny < d as i64 {
                        w[k] = dist[k];
                        total += w[k];
                    }
                }
                if total <= 0.0 {
                    break;
                }
                let mut t = rng.gen::<f64>() * total;
                let mut pick = 0;
                for (k, &wk) in w.iter().enumerate() {
                    if t < wk {
                        pick = k;
                        break;
                    }
                    t -= wk;
                }
                let (dx, dy) = DIRS[pick];
                cell = CellIndex::new((cell.ix as i64 + dx) as u32, (cell.iy as i64 + dy) as u32);
                hist.add_cell(cell);
            }
        }
        hist.normalized()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traj::sample_workload;
    use dam_geo::{BoundingBox, Point};
    use rand::SeedableRng;

    #[test]
    fn len_buckets_cover_range() {
        assert_eq!(LdpTrace::len_bucket(2), 0);
        assert_eq!(LdpTrace::len_bucket(3), 0);
        assert_eq!(LdpTrace::len_bucket(4), 1);
        assert_eq!(LdpTrace::len_bucket(200), 7);
        let mut rng = rand::rngs::StdRng::seed_from_u64(190);
        for bucket in 0..8 {
            for _ in 0..50 {
                let l = LdpTrace::sample_len(bucket, &mut rng);
                assert_eq!(LdpTrace::len_bucket(l), bucket, "len {l} bucket {bucket}");
            }
        }
    }

    #[test]
    fn estimate_is_valid_distribution() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(191);
        let base: Vec<Point> =
            (0..2000).map(|_| Point::new(rng.gen::<f64>(), rng.gen::<f64>())).collect();
        let fine = Grid2D::new(BoundingBox::unit(), 30);
        let trajs = sample_workload(&base, &fine, 100, (2, 50), &mut rng);
        let grid = Grid2D::new(BoundingBox::unit(), 6);
        let est = LdpTrace::new(1.5).estimate_distribution(&trajs, &grid, &mut rng);
        assert!((est.total() - 1.0).abs() < 1e-9);
        assert!(est.values().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn concentrated_walks_stay_concentrated() {
        // Trajectories that never leave one corner: the synthetic cloud
        // must put most mass near that corner.
        let mut rng = rand::rngs::StdRng::seed_from_u64(192);
        let trajs: Vec<Trajectory> = (0..400)
            .map(|_| Trajectory { points: (0..10).map(|_| Point::new(0.05, 0.05)).collect() })
            .collect();
        let grid = Grid2D::new(BoundingBox::unit(), 4);
        let est = LdpTrace::new(4.0).estimate_distribution(&trajs, &grid, &mut rng);
        // Mass within the 2×2 corner block.
        let corner: f64 = [(0u32, 0u32), (0, 1), (1, 0), (1, 1)]
            .iter()
            .map(|&(x, y)| est.get(CellIndex::new(x, y)))
            .sum();
        assert!(corner > 0.5, "corner mass {corner}");
    }
}
