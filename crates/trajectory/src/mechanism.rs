//! The trajectory-mechanism interface and the DAM adapter.
//!
//! Appendix D's seven-step protocol reduces every mechanism to the same
//! deliverable: a normalized *point* distribution over a `d × d` grid,
//! compared to the true trajectory-point distribution with W₂. The trait
//! here captures exactly that deliverable.

use crate::traj::{flatten, Trajectory};
use dam_core::{DamConfig, DamEstimator, SpatialEstimator};
use dam_geo::{Grid2D, Histogram2D};
use rand::RngCore;

/// A locally private mechanism producing a point-distribution estimate
/// from trajectory data.
pub trait TrajectoryMechanism {
    /// Mechanism label as used in Figure 14.
    fn name(&self) -> String;

    /// Estimates the normalized point distribution over `grid`.
    fn estimate_distribution(
        &self,
        trajs: &[Trajectory],
        grid: &Grid2D,
        rng: &mut dyn RngCore,
    ) -> Histogram2D;
}

/// The true (non-private) trajectory point distribution — step (3) of the
/// protocol.
pub fn true_distribution(trajs: &[Trajectory], grid: &Grid2D) -> Histogram2D {
    Histogram2D::from_points(grid.clone(), &flatten(trajs)).normalized()
}

/// DAM applied to trajectories by treating every trajectory point as an
/// independent user report (the comparison arm of Figure 14).
#[derive(Debug, Clone, Copy)]
pub struct DamOnPoints {
    config: DamConfig,
}

impl DamOnPoints {
    /// DAM at budget `eps` with paper defaults.
    pub fn new(eps: f64) -> Self {
        Self { config: DamConfig::dam(eps) }
    }
}

impl TrajectoryMechanism for DamOnPoints {
    fn name(&self) -> String {
        "DAM".to_string()
    }

    fn estimate_distribution(
        &self,
        trajs: &[Trajectory],
        grid: &Grid2D,
        rng: &mut dyn RngCore,
    ) -> Histogram2D {
        let points = flatten(trajs);
        DamEstimator::new(self.config).estimate(&points, grid, rng).normalized()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dam_geo::{BoundingBox, Point};
    use rand::SeedableRng;

    #[test]
    fn true_distribution_counts_every_point() {
        let trajs = vec![
            Trajectory { points: vec![Point::new(0.1, 0.1), Point::new(0.9, 0.9)] },
            Trajectory { points: vec![Point::new(0.1, 0.15)] },
        ];
        let grid = Grid2D::new(BoundingBox::unit(), 2);
        let h = true_distribution(&trajs, &grid);
        assert!((h.total() - 1.0).abs() < 1e-12);
        assert!((h.values()[0] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn dam_adapter_produces_distribution() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(180);
        let trajs: Vec<Trajectory> = (0..50)
            .map(|i| Trajectory {
                points: (0..20)
                    .map(|j| Point::new((i as f64 / 50.0 + 0.001 * j as f64) % 1.0, 0.3))
                    .collect(),
            })
            .collect();
        let grid = Grid2D::new(BoundingBox::unit(), 5);
        let est = DamOnPoints::new(2.0).estimate_distribution(&trajs, &grid, &mut rng);
        assert!((est.total() - 1.0).abs() < 1e-9);
        assert_eq!(est.grid().d(), 5);
    }
}
