//! SEM-Geo-I — the Subset Exponential Mechanism under ε-Geo-I (Wang et
//! al. \[12\]).
//!
//! Each user reports a *k-subset* of the grid-cell domain, drawn with
//! probability proportional to `Π_{u∈S} w_u(v)` where
//! `w_u(v) = exp(−(ε/2k)·dis(u, v))` and `dis` is the Euclidean distance
//! between cell centers in cell units. That makes
//! `Pr[S|v] ∝ exp(−(ε/2)·avg_{u∈S} dis(u, v))`, and the log-ratio between
//! any two inputs is bounded by `ε · dis(v₁, v₂)` (half from the utility
//! difference, half from the normaliser shift) — exactly ε-Geo-I.
//!
//! The subset size follows the paper's complexity remark (`n^k` with
//! `k = n/e^ε`): `k = clamp(⌈n / e^ε⌉, 1, n−1)`.
//!
//! Estimation inverts the inclusion-probability matrix
//! `Π[u][v] = Pr[u ∈ S | v]` (computed exactly from elementary symmetric
//! polynomials) with multiplicative Richardson–Lucy updates, the EM
//! algorithm for this Poisson-counts inverse problem.

use crate::subset::{inclusion_probabilities, LogEsp};
use dam_core::shard::sharded_accumulate;
use dam_core::SpatialEstimator;
use dam_geo::{Grid2D, Histogram2D, Point};
use rand::RngCore;

/// The SEM-Geo-I estimator.
#[derive(Debug, Clone, Copy)]
pub struct SemGeoI {
    eps_geo: f64,
    /// Explicit subset size; `None` derives `k = ⌈n/e^ε⌉`.
    k: Option<usize>,
    /// Richardson–Lucy iterations.
    rl_iters: usize,
    threads: Option<usize>,
}

impl SemGeoI {
    /// Creates the mechanism at Geo-I level `eps_geo` (privacy loss
    /// `eps_geo · dis(v, ṽ)`, distances in cell units).
    pub fn new(eps_geo: f64) -> Self {
        assert!(eps_geo > 0.0 && eps_geo.is_finite(), "privacy budget must be positive");
        Self { eps_geo, k: None, rl_iters: 200, threads: None }
    }

    /// Overrides the subset size.
    pub fn with_k(mut self, k: usize) -> Self {
        assert!(k >= 1, "subset size must be at least 1");
        self.k = Some(k);
        self
    }

    /// Sets the report-pipeline thread count (`None` = all cores; the
    /// output is bit-identical for any value).
    pub fn with_threads(mut self, threads: Option<usize>) -> Self {
        self.threads = threads;
        self
    }

    /// The Geo-I budget.
    #[inline]
    pub fn eps_geo(&self) -> f64 {
        self.eps_geo
    }

    /// Resolves the subset size for a domain of `n` cells.
    pub fn resolve_k(&self, n: usize) -> usize {
        let derived = (n as f64 / self.eps_geo.exp()).ceil() as usize;
        self.k.unwrap_or(derived).clamp(1, (n - 1).max(1))
    }

    /// Log-weights `ln w_u(v) = −(ε/2k)·dis(u, v)` for one input cell.
    /// Public so the Local Privacy calibration in `dam-privacy` can reuse
    /// the exact channel definition.
    pub fn log_weights(&self, centers: &[Point], v: usize, k: usize) -> Vec<f64> {
        let scale = self.eps_geo / (2.0 * k as f64);
        centers.iter().map(|&c| -scale * c.dist(centers[v])).collect()
    }

    /// Cell centers in cell units (`(ix + ½, iy + ½)`).
    pub fn cell_centers(grid: &Grid2D) -> Vec<Point> {
        (0..grid.n_cells())
            .map(|i| {
                let c = grid.unflat(i);
                Point::new(c.ix as f64 + 0.5, c.iy as f64 + 0.5)
            })
            .collect()
    }
}

impl SpatialEstimator for SemGeoI {
    fn name(&self) -> String {
        "SEM-Geo-I".to_string()
    }

    fn estimate(&self, points: &[Point], grid: &Grid2D, rng: &mut dyn RngCore) -> Histogram2D {
        assert!(!points.is_empty(), "cannot estimate from zero points");
        let n = grid.n_cells();
        if n == 1 {
            return Histogram2D::from_values(grid.clone(), vec![1.0]);
        }
        let k = self.resolve_k(n);
        let centers = Self::cell_centers(grid);

        // Group users by input cell once, and build each occupied cell's
        // O(nk) sampling table once — the tables are read-only, so every
        // shard shares them (only RNG draws must be per-shard for the
        // thread-count-invariance guarantee).
        let mut global_counts = vec![0u64; n];
        for &p in points {
            global_counts[grid.flat(grid.cell_of(p))] += 1;
        }
        let tables: Vec<Option<(Vec<f64>, LogEsp)>> = global_counts
            .iter()
            .enumerate()
            .map(|(v, &users)| {
                (users > 0).then(|| {
                    let lw = self.log_weights(&centers, v, k);
                    let esp = LogEsp::backward(&lw, k);
                    (lw, esp)
                })
            })
            .collect();

        // Randomized reporting, shard-parallel with deterministic
        // per-shard streams: each shard accumulates inclusion counts into
        // a private buffer.
        let master_seed = rng.next_u64();
        let incl_counts =
            sharded_accumulate(points.len(), n, master_seed, self.threads, |range, rng, buf| {
                let mut cell_counts = vec![0u64; n];
                for &p in &points[range] {
                    cell_counts[grid.flat(grid.cell_of(p))] += 1;
                }
                for (v, &users) in cell_counts.iter().enumerate() {
                    if users == 0 {
                        continue;
                    }
                    // lint: allow(no-panic-in-lib, tables[v] is built above for every cell with users > 0)
                    let (lw, esp) = tables[v].as_ref().expect("occupied cell must have a table");
                    for _ in 0..users {
                        for u in esp.sample(lw, rng) {
                            buf[u] += 1.0;
                        }
                    }
                }
            });

        // Exact inclusion-probability matrix Π[u][v], row-major over u.
        let mut pi = vec![0.0f64; n * n];
        for v in 0..n {
            let lw = self.log_weights(&centers, v, k);
            let probs = inclusion_probabilities(&lw, k);
            for (u, p) in probs.into_iter().enumerate() {
                pi[u * n + v] = p;
            }
        }

        // Richardson–Lucy inversion of E[c_u] = N · Σ_v Π[u][v] f_v.
        let n_users = points.len() as f64;
        let observed: Vec<f64> = incl_counts.iter().map(|&c| c / n_users).collect();
        let mut f = vec![1.0 / n as f64; n];
        let mut denom = vec![0.0f64; n];
        for v in 0..n {
            for u in 0..n {
                denom[v] += pi[u * n + v];
            }
        }
        for _ in 0..self.rl_iters {
            // Predicted inclusion rates.
            let mut pred = vec![0.0f64; n];
            for u in 0..n {
                let mut acc = 0.0;
                for v in 0..n {
                    acc += pi[u * n + v] * f[v];
                }
                pred[u] = acc;
            }
            let mut f_new = vec![0.0f64; n];
            for v in 0..n {
                let mut acc = 0.0;
                for u in 0..n {
                    if pred[u] > 0.0 {
                        acc += pi[u * n + v] * observed[u] / pred[u];
                    }
                }
                f_new[v] = f[v] * acc / denom[v].max(1e-300);
            }
            let total: f64 = f_new.iter().sum();
            if total > 0.0 {
                for x in &mut f_new {
                    *x /= total;
                }
            }
            f = f_new;
        }
        Histogram2D::from_values(grid.clone(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dam_geo::{BoundingBox, CellIndex};
    use rand::SeedableRng;

    fn grid(d: u32) -> Grid2D {
        Grid2D::new(BoundingBox::unit(), d)
    }

    #[test]
    fn k_follows_complexity_rule() {
        let sem = SemGeoI::new(1.0);
        // n/e^1 = 9/2.718 → ceil = 4.
        assert_eq!(sem.resolve_k(9), 4);
        // Large ε → k pinned to 1.
        assert_eq!(SemGeoI::new(9.0).resolve_k(9), 1);
        // Override wins.
        assert_eq!(SemGeoI::new(1.0).with_k(2).resolve_k(9), 2);
    }

    #[test]
    fn recovers_concentrated_distribution() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(120);
        let pts: Vec<Point> = (0..8_000).map(|_| Point::new(0.55, 0.55)).collect();
        let est = SemGeoI::new(4.0).estimate(&pts, &grid(3), &mut rng);
        // All mass in cell (1,1); SEM should put the plurality there.
        let peak = est.get(CellIndex::new(1, 1));
        assert!(peak > 0.4, "peak {peak}");
        assert!((est.total() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn geo_i_ratio_is_bounded_empirically() {
        // Sample many subsets from two neighbouring inputs and compare
        // per-item inclusion frequencies: ratios are bounded by
        // e^{ε·dis} with dis = 1 cell.
        let mut rng = rand::rngs::StdRng::seed_from_u64(121);
        let g = grid(3);
        let sem = SemGeoI::new(1.0);
        let centers = SemGeoI::cell_centers(&g);
        let k = sem.resolve_k(9);
        let trials = 120_000;
        let mut freq = [vec![0.0f64; 9], vec![0.0f64; 9]];
        for (slot, &v) in [4usize, 5usize].iter().enumerate() {
            let lw = sem.log_weights(&centers, v, k);
            let esp = LogEsp::backward(&lw, k);
            for _ in 0..trials {
                for u in esp.sample(&lw, &mut rng) {
                    freq[slot][u] += 1.0;
                }
            }
        }
        let bound = (1.0f64 * 1.0).exp() * 1.2; // ε·dis = 1, 20% sampling slack
        for u in 0..9 {
            let (a, b) = (freq[0][u] / trials as f64, freq[1][u] / trials as f64);
            if a > 0.01 && b > 0.01 {
                let ratio = (a / b).max(b / a);
                assert!(ratio <= bound, "item {u}: ratio {ratio}");
            }
        }
    }

    #[test]
    fn single_cell_domain_is_trivial() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(122);
        let pts = vec![Point::new(0.5, 0.5); 100];
        let est = SemGeoI::new(1.0).estimate(&pts, &grid(1), &mut rng);
        assert_eq!(est.values(), &[1.0]);
    }

    #[test]
    fn output_is_valid_distribution() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(123);
        let pts: Vec<Point> =
            (0..2_000).map(|i| Point::new((i % 13) as f64 / 13.0, (i % 7) as f64 / 7.0)).collect();
        let est = SemGeoI::new(2.0).estimate(&pts, &grid(4), &mut rng);
        assert!((est.total() - 1.0).abs() < 1e-9);
        assert!(est.values().iter().all(|&v| v >= 0.0 && v.is_finite()));
    }
}
