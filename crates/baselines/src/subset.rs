//! Weighted k-subset sampling (conditional Poisson sampling) in the log
//! domain.
//!
//! The Subset Exponential Mechanism draws a k-subset `S` of the cell domain
//! with probability proportional to `Π_{u∈S} w_u`. That distribution is
//! classical *conditional Poisson sampling*; both exact sequential sampling
//! and exact inclusion probabilities reduce to elementary symmetric
//! polynomials `e_j(w)`, which this module computes with the stable
//! log-domain recurrence `e_j(w_{i..}) = e_j(w_{i+1..}) + w_i·e_{j−1}(w_{i+1..})`.

use rand::Rng;

/// `ln(e^a + e^b)` without overflow.
fn log_add(a: f64, b: f64) -> f64 {
    if a == f64::NEG_INFINITY {
        return b;
    }
    if b == f64::NEG_INFINITY {
        return a;
    }
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    hi + (lo - hi).exp().ln_1p()
}

/// Backward table of log elementary symmetric polynomials:
/// `table[i][j] = ln e_j(w_i, …, w_{n−1})`, for `0 ≤ i ≤ n`, `0 ≤ j ≤ k`.
#[derive(Debug, Clone)]
pub struct LogEsp {
    n: usize,
    k: usize,
    /// Row-major `(n+1) × (k+1)`.
    table: Vec<f64>,
}

impl LogEsp {
    /// Builds the table from log-weights `lw[i] = ln w_i`.
    ///
    /// # Panics
    /// Panics unless `1 ≤ k ≤ lw.len()`.
    pub fn backward(lw: &[f64], k: usize) -> Self {
        let n = lw.len();
        assert!(k >= 1 && k <= n, "need 1 <= k <= n (k = {k}, n = {n})");
        let cols = k + 1;
        let mut table = vec![f64::NEG_INFINITY; (n + 1) * cols];
        // e_0 = 1 for every suffix.
        for i in 0..=n {
            table[i * cols] = 0.0;
        }
        for i in (0..n).rev() {
            for j in 1..=k.min(n - i) {
                let keep = table[(i + 1) * cols + j];
                let take = lw[i] + table[(i + 1) * cols + (j - 1)];
                table[i * cols + j] = log_add(keep, take);
            }
        }
        Self { n, k, table }
    }

    /// `ln e_j(w_i, …, w_{n−1})`.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i <= self.n && j <= self.k);
        self.table[i * (self.k + 1) + j]
    }

    /// `ln e_k(w)` — the log normaliser of the subset distribution.
    #[inline]
    pub fn log_norm(&self) -> f64 {
        self.at(0, self.k)
    }

    /// Draws a k-subset with probability `Π_{u∈S} w_u / e_k(w)` by the
    /// exact sequential method: include item `i` with probability
    /// `w_i · e_{j−1}(w_{i+1..}) / e_j(w_{i..})` where `j` items remain.
    pub fn sample(&self, lw: &[f64], rng: &mut (impl Rng + ?Sized)) -> Vec<usize> {
        assert_eq!(lw.len(), self.n, "weight vector changed size");
        let mut out = Vec::with_capacity(self.k);
        let mut j = self.k;
        for i in 0..self.n {
            if j == 0 {
                break;
            }
            // Remaining items must suffice: forced inclusion when tight.
            if self.n - i == j {
                out.extend(i..self.n);
                break;
            }
            let p_inc = (lw[i] + self.at(i + 1, j - 1) - self.at(i, j)).exp();
            if rng.gen::<f64>() < p_inc {
                out.push(i);
                j -= 1;
            }
        }
        debug_assert_eq!(out.len(), self.k);
        out
    }
}

/// Exact inclusion probabilities `π_u = P[u ∈ S] = w_u·e_{k−1}(w_{−u})/e_k(w)`
/// for every item, via forward+backward tables in `O(nk)`.
pub fn inclusion_probabilities(lw: &[f64], k: usize) -> Vec<f64> {
    let n = lw.len();
    assert!(k >= 1 && k <= n, "need 1 <= k <= n");
    if k == n {
        return vec![1.0; n];
    }
    let back = LogEsp::backward(lw, k);
    // Forward table: fwd[i][j] = ln e_j(w_0, …, w_{i−1}).
    let cols = k + 1;
    let mut fwd = vec![f64::NEG_INFINITY; (n + 1) * cols];
    for i in 0..=n {
        fwd[i * cols] = 0.0;
    }
    for i in 1..=n {
        for j in 1..=k.min(i) {
            let keep = fwd[(i - 1) * cols + j];
            let take = lw[i - 1] + fwd[(i - 1) * cols + (j - 1)];
            fwd[i * cols + j] = log_add(keep, take);
        }
    }
    let log_norm = back.log_norm();
    (0..n)
        .map(|u| {
            // e_{k−1}(w_{−u}) = Σ_a e_a(w_{<u}) e_{k−1−a}(w_{>u}).
            let mut acc = f64::NEG_INFINITY;
            for a in 0..k {
                acc = log_add(acc, fwd[u * cols + a] + back.at(u + 1, k - 1 - a));
            }
            (lw[u] + acc - log_norm).exp().min(1.0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn log_add_basics() {
        assert!((log_add(0.0, 0.0) - std::f64::consts::LN_2).abs() < 1e-12);
        assert_eq!(log_add(f64::NEG_INFINITY, 3.0), 3.0);
        assert!((log_add(-700.0, -700.0) - (-700.0 + std::f64::consts::LN_2)).abs() < 1e-9);
    }

    #[test]
    fn esp_matches_direct_computation() {
        // Weights (2, 3, 5): e_1 = 10, e_2 = 31, e_3 = 30.
        let lw: Vec<f64> = [2.0f64, 3.0, 5.0].iter().map(|w| w.ln()).collect();
        let t = LogEsp::backward(&lw, 3);
        assert!((t.at(0, 1).exp() - 10.0).abs() < 1e-9);
        assert!((t.at(0, 2).exp() - 31.0).abs() < 1e-9);
        assert!((t.at(0, 3).exp() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn uniform_weights_give_binomials() {
        let n = 30;
        let lw = vec![0.0f64; n]; // all weights 1
        let t = LogEsp::backward(&lw, 10);
        // e_j = C(n, j).
        let mut c = 1.0f64;
        for j in 1..=10 {
            c = c * (n as f64 - j as f64 + 1.0) / j as f64;
            assert!(
                (t.at(0, j).exp() - c).abs() / c < 1e-9,
                "e_{j} = {} vs C = {c}",
                t.at(0, j).exp()
            );
        }
    }

    #[test]
    fn inclusion_probabilities_sum_to_k() {
        use rand::Rng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(100);
        for &(n, k) in &[(10usize, 3usize), (50, 12), (100, 40)] {
            let lw: Vec<f64> = (0..n).map(|_| rng.gen_range(-3.0..1.0)).collect();
            let pi = inclusion_probabilities(&lw, k);
            let total: f64 = pi.iter().sum();
            assert!((total - k as f64).abs() < 1e-6, "n {n} k {k}: Σπ = {total}");
            assert!(pi.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn heavier_items_are_included_more_often() {
        let lw: Vec<f64> = [0.5f64, 1.0, 2.0, 4.0].iter().map(|w| w.ln()).collect();
        let pi = inclusion_probabilities(&lw, 2);
        for w in pi.windows(2) {
            assert!(w[0] < w[1], "inclusion must grow with weight: {pi:?}");
        }
    }

    #[test]
    fn sampler_matches_inclusion_probabilities() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(101);
        let weights = [1.0f64, 2.0, 0.5, 3.0, 1.5, 0.8];
        let lw: Vec<f64> = weights.iter().map(|w| w.ln()).collect();
        let k = 3;
        let t = LogEsp::backward(&lw, k);
        let pi = inclusion_probabilities(&lw, k);
        let trials = 200_000;
        let mut counts = vec![0.0; weights.len()];
        for _ in 0..trials {
            let s = t.sample(&lw, &mut rng);
            assert_eq!(s.len(), k);
            for u in s {
                counts[u] += 1.0;
            }
        }
        for u in 0..weights.len() {
            let got = counts[u] / trials as f64;
            assert!((got - pi[u]).abs() < 6e-3, "item {u}: sampled {got} vs π {}", pi[u]);
        }
    }

    #[test]
    fn k_equals_n_includes_everything() {
        let lw = vec![0.3f64.ln(); 5];
        let t = LogEsp::backward(&lw, 5);
        let mut rng = rand::rngs::StdRng::seed_from_u64(102);
        assert_eq!(t.sample(&lw, &mut rng), vec![0, 1, 2, 3, 4]);
        assert_eq!(inclusion_probabilities(&lw, 5), vec![1.0; 5]);
    }

    #[test]
    fn extreme_weight_ranges_stay_finite() {
        // Weight ratios around e^±40: the log domain must not overflow.
        let lw: Vec<f64> = (0..60).map(|i| (i as f64 - 30.0) * 1.3).collect();
        let pi = inclusion_probabilities(&lw, 20);
        assert!(pi.iter().all(|p| p.is_finite()));
        let total: f64 = pi.iter().sum();
        assert!((total - 20.0).abs() < 1e-6);
    }
}
