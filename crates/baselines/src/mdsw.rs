//! MDSW — the Multi-dimensional Square Wave mechanism (Yang et al. \[10\]).
//!
//! Each user perturbs their x and y coordinates independently with the
//! 1-D Square Wave mechanism; the analyst recovers each marginal with EMS
//! and multiplies them. Because only marginals are estimated, all
//! cross-dimension correlation is lost — the failure mode the paper's DAM
//! is designed to avoid (§VII-C2: "MDSW only retains ordinal relationship
//! of x-coordinate and y-coordinate").
//!
//! Two budget strategies are provided: the default splits `ε` in half per
//! dimension (every user reports both coordinates); the alternative
//! samples one dimension per user and spends the full `ε` on it (an
//! ablation of the standard split-vs-sample trade-off).

use dam_core::shard::sharded_accumulate;
use dam_core::SpatialEstimator;
use dam_fo::em::{expectation_maximization, smooth_1d, Channel, EmParams};
use dam_fo::sw::SquareWave;
use dam_geo::{Grid2D, Histogram2D, Point};
use rand::{Rng, RngCore};

/// Budget allocation across the two dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MdswBudget {
    /// Report both dimensions, each under `ε/2` (the paper's MDSW).
    SplitHalf,
    /// Report one uniformly chosen dimension under the full `ε`.
    SampleOne,
    /// Report both dimensions under `ε/2` each, but estimate the *joint*
    /// distribution with EM over the product channel `M_x ⊗ M_y` instead
    /// of multiplying marginals. Recovers cross-dimension correlation the
    /// product form destroys, at quadratic channel cost — the natural
    /// "fixed MDSW" ablation the paper's critique implies.
    JointEm,
}

/// The MDSW estimator.
#[derive(Debug, Clone, Copy)]
pub struct Mdsw {
    eps: f64,
    budget: MdswBudget,
    em: EmParams,
    threads: Option<usize>,
}

impl Mdsw {
    /// Creates MDSW with the paper's half-split budget.
    pub fn new(eps: f64) -> Self {
        assert!(eps > 0.0 && eps.is_finite(), "privacy budget must be positive");
        Self { eps, budget: MdswBudget::SplitHalf, em: EmParams::default(), threads: None }
    }

    /// Selects a budget strategy.
    pub fn with_budget(mut self, budget: MdswBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the report-pipeline thread count (`None` = all cores; the
    /// output is bit-identical for any value).
    pub fn with_threads(mut self, threads: Option<usize>) -> Self {
        self.threads = threads;
        self
    }

    /// Privacy budget.
    #[inline]
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Normalizes a coordinate into `[0,1]` over the grid's square extent.
    fn norm_coord(grid: &Grid2D, value: f64, min: f64) -> f64 {
        ((value - min) / grid.bbox().side()).clamp(0.0, 1.0)
    }

    /// Runs EMS on one dimension's binned output counts, returning a
    /// `d`-bin marginal estimate.
    fn estimate_marginal(sw: &SquareWave, d: usize, counts: &[f64], em: EmParams) -> Vec<f64> {
        let matrix = sw.transition_matrix(d);
        debug_assert_eq!(counts.len(), matrix.n_out);
        let channel = Channel::new(matrix.n_out, matrix.n_in, matrix.data.clone());
        expectation_maximization(&channel, counts, Some(&|f: &mut [f64]| smooth_1d(f)), em)
    }

    /// Joint-EM estimation: both coordinates are perturbed independently,
    /// so the joint channel factorises as `P((ox,oy) | (ix,iy)) =
    /// M[ox][ix]·M[oy][iy]`; EM over that product channel estimates the
    /// full 2-D distribution, preserving cross-dimension correlation.
    fn estimate_joint(
        &self,
        sw: &SquareWave,
        points: &[Point],
        grid: &Grid2D,
        rng: &mut dyn RngCore,
    ) -> Histogram2D {
        let d = grid.d() as usize;
        let bbox = grid.bbox();
        let m = sw.transition_matrix(d);
        let n_out_dim = m.n_out;
        let n_out = n_out_dim * n_out_dim;
        let n_in = d * d;
        // Joint output counts, sampled shard-parallel with deterministic
        // per-shard streams.
        let master_seed = rng.next_u64();
        let counts = sharded_accumulate(
            points.len(),
            n_out,
            master_seed,
            self.threads,
            |range, rng, buf| {
                for &p in &points[range] {
                    let x = Self::norm_coord(grid, p.x, bbox.min_x);
                    let y = Self::norm_coord(grid, p.y, bbox.min_y);
                    let ox = m.output_bin(sw.perturb(x, rng));
                    let oy = m.output_bin(sw.perturb(y, rng));
                    buf[oy * n_out_dim + ox] += 1.0;
                }
            },
        );
        // Product channel, row-major (o, i) with o = oy*n_out_dim + ox and
        // i = iy*d + ix.
        let mut data = vec![0.0f64; n_out * n_in];
        for oy in 0..n_out_dim {
            for ox in 0..n_out_dim {
                let o = oy * n_out_dim + ox;
                for iy in 0..d {
                    for ix in 0..d {
                        data[o * n_in + iy * d + ix] = m.at(ox, ix) * m.at(oy, iy);
                    }
                }
            }
        }
        let channel = Channel::new(n_out, n_in, data);
        // Plain EM (no smoothing): on coarse grids the 3×3 smoother couples
        // every pair of cells and washes out exactly the correlation this
        // variant exists to preserve; the maximum-likelihood estimate is
        // the honest choice here.
        let est = expectation_maximization(&channel, &counts, None, self.em);
        Histogram2D::from_values(grid.clone(), est).normalized()
    }
}

impl SpatialEstimator for Mdsw {
    fn name(&self) -> String {
        match self.budget {
            MdswBudget::SplitHalf => "MDSW".to_string(),
            MdswBudget::SampleOne => "MDSW-S1".to_string(),
            MdswBudget::JointEm => "MDSW-J".to_string(),
        }
    }

    fn estimate(&self, points: &[Point], grid: &Grid2D, rng: &mut dyn RngCore) -> Histogram2D {
        assert!(!points.is_empty(), "cannot estimate from zero points");
        let d = grid.d() as usize;
        let bbox = grid.bbox();
        let (eps_dim, both) = match self.budget {
            MdswBudget::SplitHalf | MdswBudget::JointEm => (self.eps / 2.0, true),
            MdswBudget::SampleOne => (self.eps, false),
        };
        let sw = SquareWave::new(eps_dim);
        if self.budget == MdswBudget::JointEm {
            return self.estimate_joint(&sw, points, grid, rng);
        }
        // Per-dimension binned output counts, sampled shard-parallel with
        // deterministic per-shard streams: the buffer holds the x counts
        // followed by the y counts.
        let m = sw.transition_matrix(d);
        let n_out = m.n_out;
        let master_seed = rng.next_u64();
        let counts = sharded_accumulate(
            points.len(),
            2 * n_out,
            master_seed,
            self.threads,
            |range, rng, buf| {
                let (bx, by) = buf.split_at_mut(n_out);
                for &p in &points[range] {
                    let x = Self::norm_coord(grid, p.x, bbox.min_x);
                    let y = Self::norm_coord(grid, p.y, bbox.min_y);
                    if both {
                        bx[m.output_bin(sw.perturb(x, rng))] += 1.0;
                        by[m.output_bin(sw.perturb(y, rng))] += 1.0;
                    } else if rng.gen::<bool>() {
                        bx[m.output_bin(sw.perturb(x, rng))] += 1.0;
                    } else {
                        by[m.output_bin(sw.perturb(y, rng))] += 1.0;
                    }
                }
            },
        );
        let (x_counts, y_counts) = counts.split_at(n_out);
        let fx = if x_counts.iter().sum::<f64>() == 0.0 {
            vec![1.0 / d as f64; d]
        } else {
            Self::estimate_marginal(&sw, d, x_counts, self.em)
        };
        let fy = if y_counts.iter().sum::<f64>() == 0.0 {
            vec![1.0 / d as f64; d]
        } else {
            Self::estimate_marginal(&sw, d, y_counts, self.em)
        };
        // Joint = outer product of the marginals.
        let mut values = vec![0.0f64; d * d];
        for iy in 0..d {
            for ix in 0..d {
                values[iy * d + ix] = fx[ix] * fy[iy];
            }
        }
        Histogram2D::from_values(grid.clone(), values).normalized()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dam_geo::{BoundingBox, CellIndex};
    use rand::SeedableRng;

    fn grid(d: u32) -> Grid2D {
        Grid2D::new(BoundingBox::unit(), d)
    }

    #[test]
    fn recovers_axis_aligned_cluster() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(110);
        // Cluster around (0.1, 0.9): MDSW handles marginal structure well.
        let pts: Vec<Point> = (0..30_000)
            .map(|i| {
                Point::new(
                    0.1 + 0.02 * ((i % 10) as f64 / 10.0 - 0.5),
                    0.9 + 0.02 * ((i % 7) as f64 / 7.0 - 0.5),
                )
            })
            .collect();
        let est = Mdsw::new(4.0).estimate(&pts, &grid(5), &mut rng);
        // EMS smoothing caps each marginal's peak near 0.5, so the joint
        // product peaks near 0.25; the cluster cell must still dominate.
        let peak = est.get(CellIndex::new(0, 4));
        assert!(peak > 0.2, "peak {peak}");
        let max = est.values().iter().cloned().fold(0.0f64, f64::max);
        assert_eq!(peak, max, "cluster cell must be the argmax");
    }

    #[test]
    fn product_form_loses_correlation() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(111);
        // Anti-diagonal data: mass at (0.1,0.1) and (0.9,0.9) only. A
        // product of marginals must leak mass onto (0.1,0.9) and
        // (0.9,0.1) — the correlation failure the paper describes.
        let pts: Vec<Point> = (0..40_000)
            .map(|i| if i % 2 == 0 { Point::new(0.1, 0.1) } else { Point::new(0.9, 0.9) })
            .collect();
        let est = Mdsw::new(6.0).estimate(&pts, &grid(2), &mut rng);
        let on_diag = est.get(CellIndex::new(0, 0)) + est.get(CellIndex::new(1, 1));
        let off_diag = est.get(CellIndex::new(0, 1)) + est.get(CellIndex::new(1, 0));
        // True distribution has off_diag = 0; MDSW's product form forces
        // off_diag ≈ on_diag ≈ 0.5.
        assert!(off_diag > 0.3, "off-diagonal mass {off_diag} should be large for MDSW");
        assert!((on_diag + off_diag - 1.0).abs() < 1e-9);
    }

    #[test]
    fn output_is_valid_distribution() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(112);
        let pts: Vec<Point> = (0..5_000)
            .map(|i| Point::new((i % 100) as f64 / 100.0, (i % 37) as f64 / 37.0))
            .collect();
        for budget in [MdswBudget::SplitHalf, MdswBudget::SampleOne, MdswBudget::JointEm] {
            let est = Mdsw::new(1.0).with_budget(budget).estimate(&pts, &grid(4), &mut rng);
            assert!((est.total() - 1.0).abs() < 1e-9, "{budget:?}");
            assert!(est.values().iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn joint_em_recovers_correlation_the_product_loses() {
        // Anti-diagonal data: the product form must leak ~half the mass
        // off-diagonal; joint EM keeps most of it on the diagonal.
        let mut rng = rand::rngs::StdRng::seed_from_u64(113);
        let pts: Vec<Point> = (0..60_000)
            .map(|i| if i % 2 == 0 { Point::new(0.1, 0.1) } else { Point::new(0.9, 0.9) })
            .collect();
        let on_diag = |h: &Histogram2D| h.get(CellIndex::new(0, 0)) + h.get(CellIndex::new(1, 1));
        let product = Mdsw::new(6.0).estimate(&pts, &grid(2), &mut rng);
        let joint =
            Mdsw::new(6.0).with_budget(MdswBudget::JointEm).estimate(&pts, &grid(2), &mut rng);
        assert!(
            on_diag(&joint) > on_diag(&product) + 0.2,
            "joint {:.3} should hold far more diagonal mass than product {:.3}",
            on_diag(&joint),
            on_diag(&product)
        );
        assert!(on_diag(&joint) > 0.8, "joint diagonal mass {:.3}", on_diag(&joint));
    }

    #[test]
    fn names_match_labels() {
        assert_eq!(Mdsw::new(1.0).name(), "MDSW");
        assert_eq!(Mdsw::new(1.0).with_budget(MdswBudget::SampleOne).name(), "MDSW-S1");
        assert_eq!(Mdsw::new(1.0).with_budget(MdswBudget::JointEm).name(), "MDSW-J");
    }
}
