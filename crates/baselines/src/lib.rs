//! # dam-baselines — the paper's comparison mechanisms
//!
//! Every mechanism DAM is evaluated against in §VII, implemented from
//! scratch behind the same [`dam_core::SpatialEstimator`] interface:
//!
//! * [`mdsw`] — the Multi-dimensional Square Wave mechanism (Yang et al.
//!   \[10\]): per-dimension Square Wave + EMS, joint estimated as the product
//!   of marginals (which is exactly why it "only retains the ordinal
//!   relationship of the x- and y-coordinates" — the deficiency the paper
//!   exploits);
//! * [`sem`] — the Subset Exponential Mechanism under ε-Geo-I (Wang et al.
//!   \[12\]): k-subset reports with product weights
//!   `exp(−(ε/2k)·dis(u, v))`, sampled by conditional Poisson sampling and
//!   inverted by Richardson–Lucy on the inclusion-probability matrix;
//! * [`subset`] — the log-domain elementary-symmetric-polynomial machinery
//!   behind the subset sampler (exposed for reuse and property tests);
//! * [`cfo`] — the classical categorical frequency oracle on grid cells
//!   (Bucket+CFO of Table I), in GRR and OUE flavours.

#![forbid(unsafe_code)]

pub mod cfo;
pub mod mdsw;
pub mod sem;
pub mod subset;

pub use cfo::{CfoEstimator, CfoFlavor};
pub use mdsw::{Mdsw, MdswBudget};
pub use sem::SemGeoI;
