//! Bucket+CFO — the categorical frequency oracle on grid cells.
//!
//! The strawman of the paper's introduction: treat the `d²` cells as
//! unordered categories and run a standard frequency oracle (GRR or OUE).
//! All spatial ordinal structure is discarded, which is what Example 1
//! criticises; it is included as the floor baseline for the ablation
//! benches.

use dam_core::shard::sharded_accumulate;
use dam_core::SpatialEstimator;
use dam_fo::{Grr, Oue};
use dam_geo::{Grid2D, Histogram2D, Point};
use rand::RngCore;

/// Which categorical oracle to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CfoFlavor {
    /// Generalized Random Response.
    Grr,
    /// Optimized Unary Encoding.
    Oue,
}

/// Categorical frequency oracle over grid cells.
#[derive(Debug, Clone, Copy)]
pub struct CfoEstimator {
    eps: f64,
    flavor: CfoFlavor,
    threads: Option<usize>,
}

impl CfoEstimator {
    /// Creates the estimator.
    pub fn new(eps: f64, flavor: CfoFlavor) -> Self {
        assert!(eps > 0.0 && eps.is_finite(), "privacy budget must be positive");
        Self { eps, flavor, threads: None }
    }

    /// Sets the report-pipeline thread count (`None` = all cores; the
    /// output is bit-identical for any value).
    pub fn with_threads(mut self, threads: Option<usize>) -> Self {
        self.threads = threads;
        self
    }

    /// Clamps negative unbiased estimates to zero and renormalises — the
    /// standard simplex projection used with CFO estimators.
    fn clamp_normalize(est: Vec<f64>) -> Vec<f64> {
        let mut v: Vec<f64> = est.into_iter().map(|x| x.max(0.0)).collect();
        let total: f64 = v.iter().sum();
        if total > 0.0 {
            for x in &mut v {
                *x /= total;
            }
        } else {
            let u = 1.0 / v.len() as f64;
            v.fill(u);
        }
        v
    }
}

impl SpatialEstimator for CfoEstimator {
    fn name(&self) -> String {
        match self.flavor {
            CfoFlavor::Grr => "CFO-GRR".to_string(),
            CfoFlavor::Oue => "CFO-OUE".to_string(),
        }
    }

    fn estimate(&self, points: &[Point], grid: &Grid2D, rng: &mut dyn RngCore) -> Histogram2D {
        assert!(!points.is_empty(), "cannot estimate from zero points");
        let n = grid.n_cells();
        if n == 1 {
            return Histogram2D::from_values(grid.clone(), vec![1.0]);
        }
        // One draw keys the deterministic per-shard streams of the
        // sharded report pipeline (bit-identical for any thread count).
        let master_seed = rng.next_u64();
        let est = match self.flavor {
            CfoFlavor::Grr => {
                let grr = Grr::new(n, self.eps);
                let counts = sharded_accumulate(
                    points.len(),
                    n,
                    master_seed,
                    self.threads,
                    |range, rng, buf| {
                        for &p in &points[range] {
                            let v = grid.flat(grid.cell_of(p));
                            buf[grr.perturb(v, rng)] += 1.0;
                        }
                    },
                );
                let counts: Vec<usize> = counts.iter().map(|&c| c as usize).collect();
                grr.estimate(&counts)
            }
            CfoFlavor::Oue => {
                let oue = Oue::new(n, self.eps);
                let support = sharded_accumulate(
                    points.len(),
                    n,
                    master_seed,
                    self.threads,
                    |range, rng, buf| {
                        for &p in &points[range] {
                            let v = grid.flat(grid.cell_of(p));
                            let rep = oue.perturb(v, rng);
                            oue.accumulate(&rep, buf);
                        }
                    },
                );
                oue.estimate(&support, points.len())
            }
        };
        Histogram2D::from_values(grid.clone(), Self::clamp_normalize(est))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dam_geo::{BoundingBox, CellIndex};
    use rand::SeedableRng;

    fn grid(d: u32) -> Grid2D {
        Grid2D::new(BoundingBox::unit(), d)
    }

    #[test]
    fn both_flavors_recover_clusters() {
        for (seed, flavor) in [(130u64, CfoFlavor::Grr), (131, CfoFlavor::Oue)] {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let pts: Vec<Point> = (0..60_000)
                .map(|i| if i % 4 == 0 { Point::new(0.1, 0.1) } else { Point::new(0.9, 0.9) })
                .collect();
            let est = CfoEstimator::new(3.0, flavor).estimate(&pts, &grid(3), &mut rng);
            let lo = est.get(CellIndex::new(0, 0));
            let hi = est.get(CellIndex::new(2, 2));
            assert!((lo - 0.25).abs() < 0.05, "{flavor:?}: lo {lo}");
            assert!((hi - 0.75).abs() < 0.05, "{flavor:?}: hi {hi}");
        }
    }

    #[test]
    fn output_is_valid_distribution() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(132);
        let pts = vec![Point::new(0.3, 0.7); 500];
        for flavor in [CfoFlavor::Grr, CfoFlavor::Oue] {
            let est = CfoEstimator::new(0.5, flavor).estimate(&pts, &grid(4), &mut rng);
            assert!((est.total() - 1.0).abs() < 1e-9);
            assert!(est.values().iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn names_match_labels() {
        assert_eq!(CfoEstimator::new(1.0, CfoFlavor::Grr).name(), "CFO-GRR");
        assert_eq!(CfoEstimator::new(1.0, CfoFlavor::Oue).name(), "CFO-OUE");
    }
}
