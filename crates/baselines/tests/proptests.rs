//! Property-based tests of the baseline mechanisms.

use dam_baselines::subset::{inclusion_probabilities, LogEsp};
use dam_baselines::SemGeoI;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sem_subset_size_is_always_legal(eps in 0.05f64..20.0, d in 1u32..25) {
        let n = (d * d) as usize;
        let k = SemGeoI::new(eps).resolve_k(n);
        prop_assert!(k >= 1);
        prop_assert!(k <= (n - 1).max(1), "k = {k} for n = {n}");
        // Monotonicity: more budget never grows the subset.
        let k2 = SemGeoI::new(eps * 2.0).resolve_k(n);
        prop_assert!(k2 <= k, "k grew with eps: {k} -> {k2}");
    }

    #[test]
    fn inclusion_probabilities_sum_to_k_for_random_weights(
        lw in prop::collection::vec(-4.0f64..2.0, 4..40),
        k_frac in 0.1f64..0.9,
    ) {
        let n = lw.len();
        let k = ((n as f64 * k_frac) as usize).clamp(1, n);
        let pi = inclusion_probabilities(&lw, k);
        let total: f64 = pi.iter().sum();
        prop_assert!((total - k as f64).abs() < 1e-6, "Σπ = {total} vs k = {k}");
        prop_assert!(pi.iter().all(|p| (0.0..=1.0 + 1e-12).contains(p)));
    }

    #[test]
    fn sampled_subsets_have_exact_size(
        lw in prop::collection::vec(-3.0f64..1.0, 5..25),
        k_frac in 0.1f64..0.9,
        seed in 0u64..200,
    ) {
        use rand::SeedableRng;
        let n = lw.len();
        let k = ((n as f64 * k_frac) as usize).clamp(1, n);
        let esp = LogEsp::backward(&lw, k);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..8 {
            let s = esp.sample(&lw, &mut rng);
            prop_assert_eq!(s.len(), k);
            // Indices are strictly increasing and in range.
            for w in s.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
            prop_assert!(s.iter().all(|&u| u < n));
        }
    }

    #[test]
    fn esp_normaliser_is_log_concave_in_k(
        lw in prop::collection::vec(-2.0f64..2.0, 6..20),
    ) {
        // Newton's inequality: e_k² ≥ e_{k−1}·e_{k+1} for real positive
        // weights — a strong correctness check on the DP recurrence.
        let n = lw.len();
        let esp = LogEsp::backward(&lw, n);
        for k in 1..n - 1 {
            let lhs = 2.0 * esp.at(0, k);
            let rhs = esp.at(0, k - 1) + esp.at(0, k + 1);
            prop_assert!(lhs >= rhs - 1e-9, "Newton violated at k = {k}");
        }
    }
}
