//! Quickstart: privately estimate a spatial distribution with the Disk
//! Area Mechanism.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Generates a synthetic Gaussian point cloud, runs the full DAM pipeline
//! (client-side randomized reporting + analyst-side EM recovery) and
//! reports the Wasserstein error against both the true distribution and a
//! non-private baseline.

use spatial_ldp::core::{DamConfig, DamEstimator, SpatialEstimator};
use spatial_ldp::data::synthetic::normal_dataset;
use spatial_ldp::geo::rng::seeded;
use spatial_ldp::geo::{BoundingBox, Grid2D, Histogram2D};
use spatial_ldp::transport::metrics::w2_exact;

fn main() {
    let mut rng = seeded(7);
    let eps = 2.0;
    let d = 8;

    // 1. The (sensitive) data: 100k points from a correlated Gaussian.
    let points = normal_dataset(100_000, &mut rng);
    let bbox = BoundingBox::of_points(&points).expect("points exist");
    let grid = Grid2D::new(bbox, d);
    println!("collected {} points over {:?}", points.len(), bbox);

    // 2. The true (non-private) distribution — for evaluation only.
    let truth = Histogram2D::from_points(grid.clone(), &points).normalized();

    // 3. Private estimation: every point is randomized on the "user" side
    //    under eps-LDP before the analyst ever sees it.
    let dam = DamEstimator::new(DamConfig::dam(eps));
    let estimate = dam.estimate(&points, &grid, &mut rng);

    // 4. How good is it? W2 in cell units (the paper's metric).
    let err = w2_exact(&estimate, &truth).expect("w2");
    println!("DAM (eps = {eps}):  W2(estimate, truth) = {err:.4} cell units");

    // For scale: the uniform distribution's error on the same data.
    let uniform = Histogram2D::zeros(grid.clone()).normalized();
    let base = w2_exact(&uniform, &truth).expect("w2");
    println!("uniform baseline:  W2(uniform,  truth) = {base:.4} cell units");
    println!(
        "DAM recovers {:.1}% of the distance a no-information estimate leaves",
        100.0 * (1.0 - err / base)
    );

    // 5. Peek at the two densities.
    println!("\ntruth (top) vs DAM estimate (bottom), row-major {d}x{d}:");
    for h in [&truth, &estimate] {
        for iy in (0..d).rev() {
            let row: Vec<String> = (0..d)
                .map(|ix| {
                    format!("{:>5.2}", 100.0 * h.get(spatial_ldp::geo::CellIndex::new(ix, iy)))
                })
                .collect();
            println!("  {}", row.join(" "));
        }
        println!();
    }
}
