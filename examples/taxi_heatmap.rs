//! Private traffic-density heatmaps from taxi pickups.
//!
//! ```text
//! cargo run --release --example taxi_heatmap
//! ```
//!
//! The paper's introduction motivates DAM with ride-hailing traffic
//! analysis: collect vehicle locations privately, recover the density,
//! route drivers around congestion. This example runs the FO = ⟨T, E⟩
//! protocol explicitly — a fleet of "driver" clients each reporting one
//! noisy cell, and one analyst aggregating — and renders before/after
//! heatmaps.

use spatial_ldp::core::em2d::PostProcess;
use spatial_ldp::core::{DamAggregator, DamClient, DamConfig};
use spatial_ldp::data::{load, DatasetKind};
use spatial_ldp::fo::em::EmParams;
use spatial_ldp::geo::rng::{derived, seeded};
use spatial_ldp::geo::{CellIndex, Grid2D, Histogram2D};
use spatial_ldp::transport::metrics::w2_auto;

const SHADES: [char; 7] = [' ', '.', ':', '-', '=', '%', '@'];

fn heat(h: &Histogram2D) {
    let d = h.grid().d();
    let max = h.values().iter().cloned().fold(0.0f64, f64::max);
    for iy in (0..d).rev() {
        let mut line = String::from("  ");
        for ix in 0..d {
            let v = h.get(CellIndex::new(ix, iy));
            let t = if max > 0.0 { v / max } else { 0.0 };
            line.push(SHADES[((t * (SHADES.len() - 1) as f64).round() as usize).min(6)]);
            line.push(SHADES[((t * (SHADES.len() - 1) as f64).round() as usize).min(6)]);
        }
        println!("{line}");
    }
}

fn main() {
    let eps = 2.5;
    let d = 20;
    let nyc = load(DatasetKind::Nyc, 3);
    let part = &nyc.parts[1]; // Part B: the busiest region (42,195 pickups)
    let grid = Grid2D::new(part.bbox, d);

    // Analyst-side setup is public knowledge; each driver builds the same
    // client and reports exactly one noisy cell.
    let config = DamConfig::dam(eps);
    let client = DamClient::new(grid.clone(), &config);
    let mut aggregator = DamAggregator::new(&client);
    println!(
        "NYC-like pickups, part {}: {} drivers report under eps = {eps}",
        part.name,
        part.points.len()
    );
    println!(
        "grid {d}x{d}, disk radius b̂ = {} cells, p̂/q̂ = e^eps = {:.2}",
        client.kernel().b_hat(),
        (client.kernel().p_hat() / client.kernel().q_hat())
    );

    for (i, &pickup) in part.points.iter().enumerate() {
        let mut driver_rng = derived(500, i as u64); // each driver randomizes locally
        let noisy_cell = client.report(pickup, &mut driver_rng);
        aggregator.ingest(noisy_cell);
    }

    let estimate = aggregator.estimate(PostProcess::Em, EmParams::default());
    let truth = Histogram2D::from_points(grid.clone(), &part.points).normalized();
    let err = w2_auto(&estimate, &truth).expect("w2");

    println!("\ntrue pickup density:");
    heat(&truth);
    println!("\nprivately recovered density (W2 = {err:.3} cell units):");
    heat(&estimate);

    // A congestion query the platform might run on the private estimate.
    let busiest = (0..grid.n_cells())
        .max_by(|&a, &b| estimate.values()[a].total_cmp(&estimate.values()[b]))
        .unwrap();
    let cell = grid.unflat(busiest);
    let center = grid.cell_center(cell);
    println!(
        "\nbusiest estimated cell: ({}, {}) centered at ({:.4}, {:.4}) — true rank {}",
        cell.ix,
        cell.iy,
        center.x,
        center.y,
        1 + truth.values().iter().filter(|&&v| v > truth.values()[busiest]).count()
    );
    let _ = seeded(0); // keep the rng helpers exercised in docs builds
}
