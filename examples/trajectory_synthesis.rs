//! Trajectory collection under LDP: LDPTrace vs PivotTrace vs DAM.
//!
//! ```text
//! cargo run --release --example trajectory_synthesis
//! ```
//!
//! Reproduces a miniature of Appendix D: sample a taxi-trip workload from
//! the NYC-like density, run the three mechanisms and compare how well
//! each recovers the *point* distribution of the fleet.

use spatial_ldp::data::{load, DatasetKind};
use spatial_ldp::geo::rng::{derived, seeded};
use spatial_ldp::geo::Grid2D;
use spatial_ldp::trajectory::mechanism::{true_distribution, TrajectoryMechanism};
use spatial_ldp::trajectory::{sample_workload, DamOnPoints, LdpTrace, PivotTrace};
use spatial_ldp::transport::metrics::w2_auto;

fn main() {
    let eps = 1.5;
    let d = 10;

    // The fleet's raw GPS traces (sensitive!).
    let nyc = load(DatasetKind::Nyc, 5);
    let part = &nyc.parts[1];
    let base_grid = Grid2D::new(part.bbox, 100);
    let mut wl_rng = seeded(61);
    let trips = sample_workload(&part.points, &base_grid, 300, (2, 60), &mut wl_rng);
    let total_points: usize = trips.iter().map(|t| t.len()).sum();
    println!(
        "{} trips, {} GPS points, privacy budget eps = {eps}, grid {d}x{d}\n",
        trips.len(),
        total_points
    );

    let grid = Grid2D::new(part.bbox, d);
    let truth = true_distribution(&trips, &grid);

    let mechanisms: Vec<Box<dyn TrajectoryMechanism>> = vec![
        Box::new(LdpTrace::new(eps)),
        Box::new(PivotTrace::new(eps)),
        Box::new(DamOnPoints::new(eps)),
    ];
    println!("{:<12} {:>10} {:>10}", "mechanism", "W2", "seconds");
    for (i, mech) in mechanisms.iter().enumerate() {
        let mut rng = derived(62, i as u64);
        let start = std::time::Instant::now();
        let est = mech.estimate_distribution(&trips, &grid, &mut rng);
        let err = w2_auto(&est, &truth).expect("w2");
        println!("{:<12} {:>10.4} {:>10.2}", mech.name(), err, start.elapsed().as_secs_f64());
    }

    println!(
        "\nLDPTrace and PivotTrace answer a harder question (whole\n\
         trajectories), so when the analyst only needs the density map,\n\
         reporting individual points through DAM spends the same budget\n\
         far more efficiently — the paper's Figure 14 conclusion."
    );
}
