//! Crime hotspot detection under local differential privacy.
//!
//! ```text
//! cargo run --release --example crime_hotspots
//! ```
//!
//! The motivating scenario of the paper's Example 1: a police analyst
//! wants the spatial distribution of shooting/crime events without
//! learning any individual location. We run DAM, DAM-NS and MDSW on the
//! Chicago-like dataset and compare (a) the W2 estimation error and
//! (b) hotspot precision@k — how many of the true top-k crime cells each
//! mechanism's estimate identifies.

use spatial_ldp::baselines::Mdsw;
use spatial_ldp::core::{DamConfig, DamEstimator, SpatialEstimator};
use spatial_ldp::data::{load, DatasetKind};
use spatial_ldp::geo::rng::derived;
use spatial_ldp::geo::{Grid2D, Histogram2D};
use spatial_ldp::transport::metrics::w2_auto;

/// Indices of the k largest cells.
fn top_k(h: &Histogram2D, k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..h.values().len()).collect();
    idx.sort_by(|&a, &b| h.values()[b].total_cmp(&h.values()[a]));
    idx.truncate(k);
    idx
}

fn main() {
    let eps = 2.0;
    let d = 12;
    let k = 10;
    let crime = load(DatasetKind::Crime, 7);

    println!("Chicago-like crime data, eps = {eps}, grid {d}x{d}, top-{k} hotspots\n");
    println!(
        "{:<10} {:>4} {:>10} {:>14} {:>12}",
        "mechanism", "part", "W2", "precision@10", "seconds"
    );

    let mechanisms: Vec<Box<dyn SpatialEstimator>> = vec![
        Box::new(DamEstimator::new(DamConfig::dam(eps))),
        Box::new(DamEstimator::new(DamConfig::dam_ns(eps))),
        Box::new(Mdsw::new(eps)),
    ];

    for mech in &mechanisms {
        for (pi, part) in crime.parts.iter().enumerate() {
            let grid = Grid2D::new(part.bbox, d);
            let truth = Histogram2D::from_points(grid.clone(), &part.points).normalized();
            let mut rng = derived(11, pi as u64);
            let start = std::time::Instant::now();
            let est = mech.estimate(&part.points, &grid, &mut rng);
            let secs = start.elapsed().as_secs_f64();
            let err = w2_auto(&est, &truth).expect("w2");
            let true_hot = top_k(&truth, k);
            let est_hot = top_k(&est, k);
            let hits = est_hot.iter().filter(|c| true_hot.contains(c)).count();
            println!(
                "{:<10} {:>4} {:>10.4} {:>13.0}% {:>12.2}",
                mech.name(),
                part.name,
                err,
                100.0 * hits as f64 / k as f64,
                secs
            );
        }
    }

    println!(
        "\nInterpretation: DAM's disk reporting keeps mass near the true\n\
         streets, so both its W2 and its hotspot precision beat the\n\
         marginal-product MDSW; shrinkage (DAM vs DAM-NS) matters exactly\n\
         because crime mass concentrates on road segments."
    );
}
