//! Private range analytics: "how many pickups in this district?"
//!
//! ```text
//! cargo run --release --example range_analytics
//! ```
//!
//! The range-query extension (`dam-range`): once a DAM estimate exists,
//! any number of range queries can be answered from it for free (post-
//! processing costs no privacy). We compare that against a dedicated
//! HIO-style hierarchical oracle trained with the same budget.

use spatial_ldp::core::{DamConfig, DamEstimator, SpatialEstimator};
use spatial_ldp::data::{load, DatasetKind};
use spatial_ldp::geo::rng::{derived, seeded};
use spatial_ldp::geo::Grid2D;
use spatial_ldp::range::{answer_from_histogram, random_queries, HierarchicalOracle};

fn main() {
    let eps = 2.0;
    let d = 16;
    let nyc = load(DatasetKind::Nyc, 9);
    let part = &nyc.parts[1];
    let grid = Grid2D::new(part.bbox, d);
    println!("{} pickups, grid {d}x{d}, eps = {eps}: district-count queries\n", part.points.len());

    let mut rng = derived(71, 0);
    let dam_est = DamEstimator::new(DamConfig::dam(eps)).estimate(&part.points, &grid, &mut rng);
    let hio = HierarchicalOracle::fit(&part.points, &grid, eps, &mut rng);

    println!("{:<12} {:>9} {:>12} {:>12}", "selectivity", "queries", "DAM+sum MAE", "HIO MAE");
    let mut wl_rng = seeded(72);
    for sel in [0.125, 0.25, 0.5] {
        let queries = random_queries(d, 150, sel, &mut wl_rng);
        let (mut e_dam, mut e_hio) = (0.0, 0.0);
        for q in &queries {
            let truth = q.true_answer(&grid, &part.points);
            e_dam += (answer_from_histogram(&dam_est, q) - truth).abs();
            e_hio += (hio.answer(q) - truth).abs();
        }
        println!(
            "{:<12} {:>9} {:>12.5} {:>12.5}",
            sel,
            queries.len(),
            e_dam / queries.len() as f64,
            e_hio / queries.len() as f64
        );
    }

    println!(
        "\nBecause differential privacy is closed under post-processing,\n\
         the DAM histogram is bought once and answers unlimited queries;\n\
         the hierarchical oracle must split users across tree levels."
    );
}
