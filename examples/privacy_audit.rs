//! Auditing privacy claims numerically.
//!
//! ```text
//! cargo run --release --example privacy_audit
//! ```
//!
//! Demonstrates the accounting layer: verify a DAM kernel's ε-LDP bound
//! over every input pair, compute the Local Privacy (expected Bayes
//! adversary error) of DAM and SEM-Geo-I, and calibrate SEM's ε′ so both
//! mechanisms leak equally — the unification protocol of §VII-B.

use spatial_ldp::core::grid::KernelKind;
use spatial_ldp::core::kernel::DiscreteKernel;
use spatial_ldp::core::radius::optimal_b_cells;
use spatial_ldp::geo::rng::seeded;
use spatial_ldp::privacy::audit::ldp_audit;
use spatial_ldp::privacy::lp::{calibrate_sem_epsilon, lp_dam, lp_sem_monte_carlo};

fn main() {
    let d = 6u32;
    println!("grid {d}x{d}\n");
    println!(
        "{:<6} {:>4} {:>14} {:>12} {:>14} {:>16}",
        "eps", "b̂", "worst loss", "LP(DAM)", "eps'(SEM)", "LP(SEM @ eps')"
    );

    for &eps in &[0.7, 1.4, 2.8, 5.0] {
        let b = optimal_b_cells(eps, d);
        let kernel = DiscreteKernel::dam(eps, d, b, KernelKind::Shrunken);

        // 1. The mechanism must never exceed its claimed e^eps ratio.
        let dd = d as usize;
        let out_d = kernel.out_d() as usize;
        let pr = |o: usize, i: usize| {
            kernel.mass(
                spatial_ldp::geo::CellIndex::new((i % dd) as u32, (i / dd) as u32),
                spatial_ldp::geo::CellIndex::new((o % out_d) as u32, (o / out_d) as u32),
            )
        };
        let audit = ldp_audit(dd * dd, out_d * out_d, &pr, eps);
        assert!(audit.holds(), "kernel violates its own privacy claim!");

        // 2. Translate the guarantee into an adversary-error currency and
        //    find the Geo-I budget with the same leakage.
        let lp = lp_dam(&kernel);
        let mut rng = seeded(99);
        let eps_sem = calibrate_sem_epsilon(lp, d, 1500, &mut rng);
        let lp_sem = lp_sem_monte_carlo(eps_sem, d, 4000, &mut rng);

        println!(
            "{:<6} {:>4} {:>14.6} {:>12.4} {:>14.4} {:>16.4}",
            eps, b, audit.worst_loss, lp, eps_sem, lp_sem
        );
    }

    println!(
        "\n'worst loss' is the largest observed log probability ratio over\n\
         all input pairs — always at or below eps, as Theorem IV.1\n\
         promises. LP is the Bayes adversary's expected localisation error\n\
         in cells: equal LP values mean equal practical privacy, which is\n\
         how the paper makes eps-LDP DAM and eps'-Geo-I SEM comparable."
    );
}
