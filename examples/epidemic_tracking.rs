//! Private epidemic monitoring: estimating a multi-focal outbreak.
//!
//! ```text
//! cargo run --release --example epidemic_tracking
//! ```
//!
//! The paper's second motivating workload: "a COVID-19 affected area is
//! more likely to lead to outbreaks in surrounding areas than in distant
//! ones" — the ordinal structure DAM preserves and categorical oracles
//! destroy. We simulate three infection foci (the MNormal mixture),
//! collect case locations under LDP at several privacy budgets and watch
//! each mechanism's ability to localise the foci.

use spatial_ldp::baselines::{CfoEstimator, CfoFlavor};
use spatial_ldp::core::{DamConfig, DamEstimator, SpatialEstimator};
use spatial_ldp::data::synthetic::mnormal_dataset;
use spatial_ldp::geo::rng::{derived, seeded};
use spatial_ldp::geo::{BoundingBox, Grid2D, Histogram2D};
use spatial_ldp::transport::metrics::w2_auto;

fn main() {
    let mut data_rng = seeded(21);
    let cases = mnormal_dataset(150_000, &mut data_rng);
    let bbox = BoundingBox::of_points(&cases).expect("points exist");
    let d = 10;
    let grid = Grid2D::new(bbox, d);
    let truth = Histogram2D::from_points(grid.clone(), &cases).normalized();

    println!("{} simulated case locations, three outbreak foci, grid {d}x{d}\n", cases.len());
    println!("{:<8} {:>10} {:>10} {:>10}", "eps", "DAM", "CFO-GRR", "DAM gain");

    for (i, &eps) in [0.7, 1.4, 2.8, 5.0].iter().enumerate() {
        let mut rng_a = derived(33, i as u64);
        let mut rng_b = derived(34, i as u64);
        let dam = DamEstimator::new(DamConfig::dam(eps)).estimate(&cases, &grid, &mut rng_a);
        let cfo = CfoEstimator::new(eps, CfoFlavor::Grr).estimate(&cases, &grid, &mut rng_b);
        let w_dam = w2_auto(&dam, &truth).expect("w2");
        let w_cfo = w2_auto(&cfo, &truth).expect("w2");
        println!(
            "{:<8} {:>10.4} {:>10.4} {:>9.1}%",
            eps,
            w_dam,
            w_cfo,
            100.0 * (1.0 - w_dam / w_cfo)
        );
    }

    println!(
        "\nThe categorical oracle treats neighbouring districts as unrelated\n\
         symbols, so its errors scatter across the map; DAM's noise lands\n\
         *near* the true focus, which is what the Wasserstein metric (and\n\
         an epidemiologist) cares about."
    );
}
