//! Private epidemic monitoring: estimating a multi-focal outbreak.
//!
//! ```text
//! cargo run --release --example epidemic_tracking
//! ```
//!
//! The paper's second motivating workload: "a COVID-19 affected area is
//! more likely to lead to outbreaks in surrounding areas than in distant
//! ones" — the ordinal structure DAM preserves and categorical oracles
//! destroy. We simulate three infection foci (the MNormal mixture),
//! collect case locations under LDP at several privacy budgets and watch
//! each mechanism's ability to localise the foci.

use rand::Rng;
use spatial_ldp::baselines::{CfoEstimator, CfoFlavor};
use spatial_ldp::core::{DamConfig, DamEstimator, SpatialEstimator};
use spatial_ldp::data::synthetic::{mnormal_dataset, standard_normal};
use spatial_ldp::geo::rng::{derived, seeded};
use spatial_ldp::geo::{BoundingBox, Grid2D, Histogram2D, Point};
use spatial_ldp::stream::{StreamConfig, StreamingEstimator};
use spatial_ldp::transport::metrics::w2_auto;

fn main() {
    let mut data_rng = seeded(21);
    let cases = mnormal_dataset(150_000, &mut data_rng);
    let bbox = BoundingBox::of_points(&cases).expect("points exist");
    let d = 10;
    let grid = Grid2D::new(bbox, d);
    let truth = Histogram2D::from_points(grid.clone(), &cases).normalized();

    println!("{} simulated case locations, three outbreak foci, grid {d}x{d}\n", cases.len());
    println!("{:<8} {:>10} {:>10} {:>10}", "eps", "DAM", "CFO-GRR", "DAM gain");

    for (i, &eps) in [0.7, 1.4, 2.8, 5.0].iter().enumerate() {
        let mut rng_a = derived(33, i as u64);
        let mut rng_b = derived(34, i as u64);
        let dam = DamEstimator::new(DamConfig::dam(eps)).estimate(&cases, &grid, &mut rng_a);
        let cfo = CfoEstimator::new(eps, CfoFlavor::Grr).estimate(&cases, &grid, &mut rng_b);
        let w_dam = w2_auto(&dam, &truth).expect("w2");
        let w_cfo = w2_auto(&cfo, &truth).expect("w2");
        println!(
            "{:<8} {:>10.4} {:>10.4} {:>9.1}%",
            eps,
            w_dam,
            w_cfo,
            100.0 * (1.0 - w_dam / w_cfo)
        );
    }

    println!(
        "\nThe categorical oracle treats neighbouring districts as unrelated\n\
         symbols, so its errors scatter across the map; DAM's noise lands\n\
         *near* the true focus, which is what the Wasserstein metric (and\n\
         an epidemiologist) cares about."
    );

    moving_outbreak();
}

/// The time-evolving variant: an outbreak focus travels across the city
/// while case reports arrive in daily epochs. A [`StreamingEstimator`]
/// keeps a 5-day sliding-window estimate alive the whole time — each
/// day's update warm-starts from yesterday's estimate, so the per-day
/// PostProcess budget is a third of a from-scratch fit.
fn moving_outbreak() {
    let d = 12u32;
    let window = 5usize;
    let days = 14usize;
    let cases_per_day = 12_000usize;
    let grid = Grid2D::new(BoundingBox::unit(), d);
    let mut tracker =
        StreamingEstimator::new(grid.clone(), StreamConfig::new(DamConfig::dam(2.8), window, 35));

    println!("\n== Moving outbreak: {days} daily epochs, {window}-day sliding window ==");
    println!(
        "{:<6} {:>12} {:>12} {:>10} {:>9}",
        "day", "true focus", "est. peak", "window TV", "EM iters"
    );

    let mut day_cases: Vec<Vec<Point>> = Vec::new();
    for day in 0..days {
        // The focus advances a little every day; reports are noisy
        // case locations around it plus scattered background.
        let u = day as f64 / (days - 1) as f64;
        let focus = Point::new(0.2 + 0.6 * u, 0.7 - 0.4 * u);
        let mut rng = derived(36, day as u64);
        let cases: Vec<Point> = (0..cases_per_day)
            .map(|_| {
                if rng.gen::<f64>() < 0.15 {
                    Point::new(rng.gen(), rng.gen())
                } else {
                    Point::new(
                        (focus.x + 0.06 * standard_normal(&mut rng)).clamp(0.0, 1.0),
                        (focus.y + 0.06 * standard_normal(&mut rng)).clamp(0.0, 1.0),
                    )
                }
            })
            .collect();
        tracker.ingest_epoch(&cases);
        day_cases.push(cases);

        let est = tracker.estimate_window();
        let lo = (day + 1).saturating_sub(window);
        let window_points: Vec<Point> =
            day_cases[lo..=day].iter().flat_map(|c| c.iter().copied()).collect();
        let truth = Histogram2D::from_points(grid.clone(), &window_points).normalized();
        // The estimated hotspot: the cell with the most mass.
        let peak = grid
            .cells()
            .max_by(|&a, &b| est.histogram.get(a).partial_cmp(&est.histogram.get(b)).unwrap())
            .unwrap();
        let focus_cell = grid.cell_of(focus);
        println!(
            "{:<6} {:>12} {:>12} {:>10.4} {:>9}",
            day,
            format!("({},{})", focus_cell.ix, focus_cell.iy),
            format!("({},{})", peak.ix, peak.iy),
            est.histogram.tv_distance(&truth),
            est.em_iters,
        );
    }
    println!(
        "\nThe estimated hotspot follows the true focus one day's drift\n\
         behind at most, while warm-started EM keeps steady-state days at\n\
         a third of the cold iteration budget (first day runs cold)."
    );
}
